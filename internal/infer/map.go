package infer

import (
	"math"
	"math/rand"

	"probkb/internal/factor"
)

// MAP inference: find the most probable possible world (Section 2.2 of
// the paper mentions MAP as the alternative to the marginal inference
// ProbKB ships with; this implementation makes the repository's
// inference substrate complete).
//
// The algorithm is MaxWalkSAT (Kautz, Selman & Jiang), the standard MLN
// MAP search: repeatedly pick an unsatisfied factor and flip either the
// variable that most improves the weighted satisfaction score (greedy
// move) or a random variable of the factor (noise move, probability p).

// MAPOptions configures MAP search.
type MAPOptions struct {
	// Restarts is the number of random restarts (default 3).
	Restarts int
	// FlipsPerRestart bounds each walk (default 50 × #vars).
	FlipsPerRestart int
	// Noise is the random-move probability (default 0.2).
	Noise float64
	// Seed makes runs reproducible.
	Seed int64
}

func (o MAPOptions) withDefaults(nvars int) MAPOptions {
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.FlipsPerRestart == 0 {
		o.FlipsPerRestart = 50 * nvars
	}
	if o.Noise == 0 {
		o.Noise = 0.2
	}
	return o
}

// MAPResult is the best assignment found and its unnormalized log score.
type MAPResult struct {
	Assignment []bool
	LogScore   float64
}

// MAP searches for the most probable assignment by MaxWalkSAT.
func MAP(g *factor.Graph, opts MAPOptions) MAPResult {
	n := g.NumVars()
	if n == 0 {
		return MAPResult{}
	}
	opts = opts.withDefaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	best := MAPResult{Assignment: make([]bool, n), LogScore: math.Inf(-1)}
	assign := make([]bool, n)

	for restart := 0; restart < opts.Restarts; restart++ {
		for v := range assign {
			assign[v] = rng.Intn(2) == 0
		}
		score := g.LogScore(assign)
		if score > best.LogScore {
			best.LogScore = score
			copy(best.Assignment, assign)
		}

		for flip := 0; flip < opts.FlipsPerRestart; flip++ {
			fi, ok := pickUnsatisfied(g, assign, rng)
			if !ok {
				// Every positive-weight factor satisfied: for Horn MLNs
				// with non-negative weights this is a global optimum.
				break
			}
			f := g.Factor(fi)
			vars := f.Vars()

			var flipVar int32
			if rng.Float64() < opts.Noise {
				flipVar = vars[rng.Intn(len(vars))]
			} else {
				// Greedy: flip the factor variable with the best score
				// delta.
				bestDelta := math.Inf(-1)
				flipVar = vars[0]
				for _, v := range vars {
					d := flipDelta(g, assign, v)
					if d > bestDelta {
						bestDelta = d
						flipVar = v
					}
				}
			}
			score += flipDelta(g, assign, flipVar)
			assign[flipVar] = !assign[flipVar]

			if score > best.LogScore {
				best.LogScore = score
				copy(best.Assignment, assign)
			}
		}
	}
	// Recompute the exact score of the winner (incremental updates are
	// exact in theory; this guards against drift and is cheap).
	best.LogScore = g.LogScore(best.Assignment)
	return best
}

// pickUnsatisfied samples a "score-losing" factor uniformly (reservoir
// sampling over one pass): an unsatisfied positive-weight factor, or a
// satisfied negative-weight one (which is the same thing after negating
// the clause).
func pickUnsatisfied(g *factor.Graph, assign []bool, rng *rand.Rand) (int, bool) {
	chosen := -1
	seen := 0
	for i := 0; i < g.NumFactors(); i++ {
		f := g.Factor(i)
		sat := f.Satisfied(assign)
		losing := (f.W > 0 && !sat) || (f.W < 0 && sat)
		if !losing {
			continue
		}
		seen++
		if rng.Intn(seen) == 0 {
			chosen = i
		}
	}
	return chosen, chosen >= 0
}

// flipDelta computes the change in Σ w·[satisfied] from flipping v.
func flipDelta(g *factor.Graph, assign []bool, v int32) float64 {
	var delta float64
	old := assign[v]
	for _, fi := range g.FactorsOf(v) {
		f := g.Factor(int(fi))
		assign[v] = old
		before := 0.0
		if f.Satisfied(assign) {
			before = f.W
		}
		assign[v] = !old
		after := 0.0
		if f.Satisfied(assign) {
			after = f.W
		}
		delta += after - before
	}
	assign[v] = old
	return delta
}

// ExactMAP enumerates every assignment and returns the true optimum —
// the test oracle for MAP (bounded by MaxExactVars).
func ExactMAP(g *factor.Graph) (MAPResult, error) {
	n := g.NumVars()
	if n > MaxExactVars {
		return MAPResult{}, errTooLarge(n)
	}
	best := MAPResult{Assignment: make([]bool, n), LogScore: math.Inf(-1)}
	if n == 0 {
		best.LogScore = 0
		return best, nil
	}
	assign := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		if s := g.LogScore(assign); s > best.LogScore {
			best.LogScore = s
			copy(best.Assignment, assign)
		}
	}
	return best, nil
}

func errTooLarge(n int) error {
	return &tooLargeError{n}
}

type tooLargeError struct{ n int }

func (e *tooLargeError) Error() string {
	return "infer: graph too large for exact inference"
}
