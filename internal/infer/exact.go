package infer

import (
	"fmt"
	"math"

	"probkb/internal/factor"
)

// MaxExactVars bounds the brute-force enumeration: 2^22 assignments is
// the largest state space Exact will walk.
const MaxExactVars = 22

// Exact computes the true marginals P(X_v = 1) by enumerating every
// assignment — the test oracle for the Gibbs samplers. It fails on
// graphs with more than MaxExactVars variables.
func Exact(g *factor.Graph) ([]float64, error) {
	n := g.NumVars()
	if n > MaxExactVars {
		return nil, fmt.Errorf("infer: %d variables exceeds exact-inference bound %d", n, MaxExactVars)
	}
	if n == 0 {
		return nil, nil
	}

	assign := make([]bool, n)
	probs := make([]float64, n)
	var z float64

	// Streaming log-sum-exp over all 2^n assignments keeps the
	// enumeration numerically stable for large weights.
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		l := g.LogScore(assign)
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	for mask, l := range logs {
		w := math.Exp(l - maxLog)
		z += w
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				probs[v] += w
			}
		}
	}
	for v := range probs {
		probs[v] /= z
	}
	return probs, nil
}
