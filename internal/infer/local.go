// Query-time marginal inference: Gibbs over one variable's Markov
// neighborhood instead of the whole ground graph. This is the
// Wick-et-al. style query-driven MCMC counterpart to the global
// Marginals pass: the target's marginal depends only on its connected
// component, and a bounded radius approximates even that.
package infer

import (
	"context"
	"fmt"

	"probkb/internal/factor"
)

// LocalResult reports one local marginal estimate and the shape of the
// neighborhood it was computed over.
type LocalResult struct {
	// Probability is the estimated P(target = 1).
	Probability float64
	// Collected is the number of post-burn-in sweeps actually used.
	Collected int
	// Vars and Factors describe the extracted neighborhood subgraph.
	Vars    int
	Factors int
}

// LocalMarginalContext estimates the marginal of one variable by Gibbs
// sampling over only its radius-hop Markov neighborhood (radius <= 0:
// its whole connected component, which yields the same distribution as
// sampling the full graph restricted to that component). target is a
// variable index of g. Cancellation mirrors MarginalsContext: on a
// context error after at least one collected sweep the estimate from
// the collected samples is returned along with the error.
func LocalMarginalContext(ctx context.Context, g *factor.Graph, target int32, radius int, opts Options) (LocalResult, error) {
	if int(target) < 0 || int(target) >= g.NumVars() {
		return LocalResult{}, fmt.Errorf("infer: local target variable %d out of range [0, %d)", target, g.NumVars())
	}
	sub := g.Subgraph(target, radius)
	res := LocalResult{Vars: sub.NumVars(), Factors: sub.NumFactors()}
	v, ok := sub.VarOf(g.FactID(target))
	if !ok {
		return res, fmt.Errorf("infer: target fact %d missing from its own neighborhood", g.FactID(target))
	}
	probs, collected, err := MarginalsContext(ctx, sub, opts)
	res.Collected = collected
	if collected > 0 {
		res.Probability = probs[v]
	}
	return res, err
}
