package infer

import (
	"math"
	"math/rand"
	"testing"
)

func TestMAPMatchesExactOnSmallGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 3+rng.Intn(6))
		exact, err := ExactMAP(g)
		if err != nil {
			t.Fatal(err)
		}
		got := MAP(g, MAPOptions{Seed: seed, Restarts: 5})
		// MaxWalkSAT must reach the optimum score on these tiny graphs
		// (the argmax itself may be non-unique).
		if math.Abs(got.LogScore-exact.LogScore) > 1e-9 {
			t.Fatalf("seed %d: MAP score %v, exact %v", seed, got.LogScore, exact.LogScore)
		}
		// The reported score matches the assignment.
		if math.Abs(g.LogScore(got.Assignment)-got.LogScore) > 1e-9 {
			t.Fatalf("seed %d: reported score inconsistent with assignment", seed)
		}
	}
}

func TestMAPHornStructure(t *testing.T) {
	// Strong evidence for the body, positive implication: the MAP world
	// sets the head true.
	g := graphFromFactors(t, 3, [][4]any{
		{1, null, null, 4.0},
		{2, null, null, 4.0},
		{0, 1, 2, 2.0},
	})
	res := MAP(g, MAPOptions{Seed: 1})
	if !res.Assignment[1] || !res.Assignment[2] {
		t.Fatal("evidence variables should be true in the MAP world")
	}
	if !res.Assignment[0] {
		t.Fatal("implied head should be true in the MAP world")
	}
}

func TestMAPNegativeEvidence(t *testing.T) {
	// Strong negative singleton: the MAP world sets the variable false.
	g := graphFromFactors(t, 1, [][4]any{{0, null, null, -5.0}})
	res := MAP(g, MAPOptions{Seed: 2})
	if res.Assignment[0] {
		t.Fatal("negatively weighted fact should be false in the MAP world")
	}
}

func TestMAPEmptyGraph(t *testing.T) {
	g := graphFromFactors(t, 0, nil)
	res := MAP(g, MAPOptions{})
	if len(res.Assignment) != 0 {
		t.Fatal("empty graph should yield empty assignment")
	}
	if _, err := ExactMAP(g); err != nil {
		t.Fatal(err)
	}
}

func TestExactMAPBounds(t *testing.T) {
	g := graphFromFactors(t, MaxExactVars+1, nil)
	if _, err := ExactMAP(g); err == nil {
		t.Fatal("oversized graph accepted")
	}
	if msg := errTooLarge(30).Error(); msg == "" {
		t.Fatal("error message empty")
	}
}

func TestMAPDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(t, rng, 8)
	a := MAP(g, MAPOptions{Seed: 9})
	b := MAP(g, MAPOptions{Seed: 9})
	if a.LogScore != b.LogScore {
		t.Fatal("same seed, different MAP scores")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed, different MAP assignments")
		}
	}
}

func TestDiagnosticsConvergedChain(t *testing.T) {
	// A well-mixing single-variable chain converges: R̂ ≈ 1.
	g := graphFromFactors(t, 2, [][4]any{
		{0, null, null, 0.8},
		{1, 0, null, 1.0},
	})
	d := MarginalsWithDiagnostics(g, Options{Burnin: 200, Samples: 2000, Seed: 5}, 4)
	if d.Chains != 4 {
		t.Fatalf("chains = %d", d.Chains)
	}
	if !d.Converged(1.1) {
		t.Fatalf("well-mixing chain reported unconverged: R̂ = %v", d.RHat)
	}
	// Pooled marginals agree with the exact answer.
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		if math.Abs(d.Marginals[v]-exact[v]) > 0.05 {
			t.Fatalf("pooled marginal %d: %v vs exact %v", v, d.Marginals[v], exact[v])
		}
	}
}

func TestDiagnosticsDetectsTooFewSamples(t *testing.T) {
	// With a near-deterministic bimodal structure and almost no samples,
	// chains disagree and R̂ should be clearly above 1.
	g := graphFromFactors(t, 6, [][4]any{
		{0, 1, null, 6.0}, {1, 0, null, 6.0},
		{2, 3, null, 6.0}, {3, 2, null, 6.0},
		{4, 5, null, 6.0}, {5, 4, null, 6.0},
	})
	short := MarginalsWithDiagnostics(g, Options{Burnin: 1, Samples: 4, Seed: 6}, 4)
	long := MarginalsWithDiagnostics(g, Options{Burnin: 200, Samples: 4000, Seed: 6}, 4)
	if short.MaxRHat <= long.MaxRHat {
		t.Fatalf("short run R̂ (%v) should exceed long run R̂ (%v)", short.MaxRHat, long.MaxRHat)
	}
}

func TestDiagnosticsMinimumChains(t *testing.T) {
	g := graphFromFactors(t, 1, [][4]any{{0, null, null, 1.0}})
	d := MarginalsWithDiagnostics(g, Options{Burnin: 10, Samples: 50, Seed: 7}, 0)
	if d.Chains < 2 {
		t.Fatal("diagnostics need at least two chains")
	}
	empty := MarginalsWithDiagnostics(graphFromFactors(t, 0, nil), Options{}, 3)
	if len(empty.Marginals) != 0 {
		t.Fatal("empty graph diagnostics should be empty")
	}
}
