package infer

import (
	"math"

	"probkb/internal/factor"
	"probkb/internal/obs"
)

// Convergence diagnostics for the Gibbs samplers: the split-chain
// potential scale reduction factor (Gelman–Rubin R̂) computed over
// independent chains. The paper treats inference as a black box; a
// production system needs to know when the box has actually converged,
// so Expansion-level tooling exposes this.

// Diagnostics summarizes a multi-chain run.
type Diagnostics struct {
	// Marginals are the pooled estimates over all chains.
	Marginals []float64
	// RHat is the per-variable potential scale reduction factor; values
	// near 1 indicate convergence (< 1.1 is the usual threshold).
	RHat []float64
	// MaxRHat is the worst R̂ across variables.
	MaxRHat float64
	// Chains is the number of chains run.
	Chains int
}

// Converged reports whether every variable's R̂ is below the threshold
// (use 1.1 if unsure).
func (d Diagnostics) Converged(threshold float64) bool {
	return d.MaxRHat <= threshold
}

// MarginalsWithDiagnostics runs `chains` independent Gibbs chains with
// different seeds and computes pooled marginals plus split-chain R̂ per
// variable.
//
// R̂ for binary-variable marginals uses the chain means: B/n is the
// between-chain variance of the per-chain marginal estimates, W the
// average within-chain variance of the indicator draws.
func MarginalsWithDiagnostics(g *factor.Graph, opts Options, chains int) Diagnostics {
	if chains < 2 {
		chains = 2
	}
	opts = opts.withDefaults()
	n := g.NumVars()
	d := Diagnostics{Chains: chains}
	if n == 0 {
		return d
	}

	// Per-chain marginal estimates.
	est := make([][]float64, chains)
	for c := 0; c < chains; c++ {
		chainOpts := opts
		chainOpts.Seed = opts.Seed + int64(c)*1_000_003
		chainOpts.Chain = c + 1 // label each chain's metrics series
		est[c] = Marginals(g, chainOpts)
	}

	m := float64(chains)
	samples := float64(opts.Samples)
	d.Marginals = make([]float64, n)
	d.RHat = make([]float64, n)
	for v := 0; v < n; v++ {
		// Pooled mean.
		var mean float64
		for c := 0; c < chains; c++ {
			mean += est[c][v]
		}
		mean /= m
		d.Marginals[v] = mean

		// Between-chain variance of means (times n).
		var b float64
		for c := 0; c < chains; c++ {
			diff := est[c][v] - mean
			b += diff * diff
		}
		b = b * samples / (m - 1)

		// Within-chain variance: for a Bernoulli stream with mean p̂ the
		// sample variance is p̂(1-p̂)·n/(n-1).
		var w float64
		for c := 0; c < chains; c++ {
			p := est[c][v]
			w += p * (1 - p) * samples / math.Max(samples-1, 1)
		}
		w /= m

		if w <= 1e-12 {
			// Degenerate variable (pinned to 0 or 1 in every chain):
			// converged by definition if the means agree.
			if b <= 1e-12 {
				d.RHat[v] = 1
			} else {
				d.RHat[v] = math.Inf(1)
			}
		} else {
			varPlus := (samples-1)/samples*w + b/samples
			d.RHat[v] = math.Sqrt(varPlus / w)
		}
		if d.RHat[v] > d.MaxRHat {
			d.MaxRHat = d.RHat[v]
		}
	}
	// Record the convergence trajectory: each diagnostics run leaves its
	// worst R̂ in the registry so a live server shows whether inference
	// has actually mixed.
	obs.Default.Gauge("probkb_infer_rhat_max").Set(d.MaxRHat)
	return d
}
