// Package infer implements marginal inference over ground factor graphs.
//
// The paper delegates this phase to an external engine (a parallel Gibbs
// sampler on GraphLab [14, 29]); this package plays that role with two
// samplers sharing one conditional kernel:
//
//   - a sequential Gibbs sweep, and
//   - a *chromatic* parallel Gibbs sampler: variables are greedily
//     colored so no two neighbors share a color, then each color class is
//     sampled synchronously in parallel — the construction of Gonzalez et
//     al. [14] the paper cites, which preserves Gibbs correctness because
//     a variable's conditional depends only on other colors.
//
// An exact enumeration oracle (exact.go) validates both on small graphs.
package infer

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/kb"
	"probkb/internal/obs"
)

func init() {
	obs.Default.Help("probkb_infer_sweeps_total", "Gibbs sweeps executed, by chain.")
	obs.Default.Help("probkb_infer_flips_total", "Variable value flips across Gibbs sweeps, by chain.")
	obs.Default.Help("probkb_infer_samples_per_second", "Live variable-resample throughput of the running Gibbs chain.")
	obs.Default.Help("probkb_infer_rhat_max", "Worst split-chain Gelman-Rubin R-hat of the latest diagnostics run.")
}

// SweepStats reports one Gibbs sweep's progress — the live view of a
// long-running stochastic process: the MCMC analogue of a grounding
// iteration's IterStats.
type SweepStats struct {
	// Sweep is 1-based and counts burn-in sweeps too.
	Sweep int
	// Burnin reports whether the sweep was discarded.
	Burnin bool
	// Vars is the number of variables resampled per sweep.
	Vars int
	// Flips is how many variables changed value in this sweep; the flip
	// rate falling toward its stationary level is the cheapest mixing
	// signal available.
	Flips int
	// Elapsed is wall time since the run started.
	Elapsed time.Duration
}

// Options configures a sampling run.
type Options struct {
	// Burnin sweeps are discarded before collecting.
	Burnin int
	// Samples sweeps are collected for the marginal estimates.
	Samples int
	// Seed makes runs reproducible.
	Seed int64
	// Parallel enables the chromatic sampler.
	Parallel bool
	// Workers bounds the goroutines per color; 0 means NumCPU.
	Workers int
	// OnIteration, when non-nil, observes every sweep as it completes —
	// progress without polling after the fact. It runs on the sampling
	// goroutine; keep it cheap.
	OnIteration func(SweepStats)
	// OnCheckpoint, when non-nil, receives a Checkpoint every
	// CheckpointEvery sweeps and on the final sweep, carrying the
	// convergence timeline (split-half R-hat / ESS over TrackVars
	// variables). It runs on the sampling goroutine.
	OnCheckpoint func(Checkpoint)
	// CheckpointEvery is the sweep interval between checkpoints; 0 means
	// DefaultCheckpointEvery (only relevant with OnCheckpoint set).
	CheckpointEvery int
	// TrackVars caps how many variables the timeline tracks for
	// per-atom diagnostics; 0 means a default of 32.
	TrackVars int
	// Chain labels this run's metrics series (MarginalsWithDiagnostics
	// runs several chains and numbers them); single runs leave it 0.
	Chain int
}

func (o Options) withDefaults() Options {
	if o.Burnin == 0 {
		o.Burnin = 100
	}
	if o.Samples == 0 {
		o.Samples = 500
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	return o
}

// Marginals estimates P(X_v = 1) for every variable by Gibbs sampling.
func Marginals(g *factor.Graph, opts Options) []float64 {
	probs, _, _ := MarginalsContext(context.Background(), g, opts)
	return probs
}

// MarginalsContext is Marginals with cooperative cancellation: the
// sampler checks ctx once per sweep (sequential) or per color class
// (chromatic) and stops early when it is cancelled or past its
// deadline. It returns the marginal estimates normalized over the
// post-burn-in sweeps actually collected, that count, and the context's
// error (nil on a full run). On cancellation before any sample was
// collected the estimates are nil.
func MarginalsContext(ctx context.Context, g *factor.Graph, opts Options) ([]float64, int, error) {
	opts = opts.withDefaults()
	n := g.NumVars()
	if n == 0 {
		return nil, 0, ctx.Err()
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	assign := make([]bool, n)
	for v := range assign {
		assign[v] = rng.Intn(2) == 0
	}

	counts := make([]int64, n)
	ob := newSweepObserver(assign, opts)
	var collected int
	var err error
	if opts.Parallel {
		collected, err = runChromatic(ctx, g, assign, counts, opts, ob)
	} else {
		collected, err = runSequential(ctx, g, assign, counts, opts, rng, ob)
	}
	ob.finish()

	if collected == 0 {
		return nil, 0, err
	}
	probs := make([]float64, n)
	for v := range probs {
		probs[v] = float64(counts[v]) / float64(collected)
	}
	return probs, collected, err
}

// condLogOdds computes log P(v=1 | blanket) - log P(v=0 | blanket): the
// sum over v's factors of w·[satisfied with v=1] - w·[satisfied with
// v=0].
func condLogOdds(g *factor.Graph, assign []bool, v int32) float64 {
	var lo float64
	old := assign[v]
	for _, fi := range g.FactorsOf(v) {
		f := g.Factor(int(fi))
		assign[v] = true
		if f.Satisfied(assign) {
			lo += f.W
		}
		assign[v] = false
		if f.Satisfied(assign) {
			lo -= f.W
		}
	}
	assign[v] = old
	return lo
}

// sampleVar resamples one variable from its conditional.
func sampleVar(g *factor.Graph, assign []bool, v int32, u float64) {
	p1 := sigmoid(condLogOdds(g, assign, v))
	assign[v] = u < p1
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func runSequential(ctx context.Context, g *factor.Graph, assign []bool, counts []int64, opts Options, rng *rand.Rand, ob *sweepObserver) (int, error) {
	n := g.NumVars()
	collected := 0
	for sweep := 0; sweep < opts.Burnin+opts.Samples; sweep++ {
		// Cooperative cancellation: check once per sweep.
		if err := ctx.Err(); err != nil {
			return collected, err
		}
		for v := 0; v < n; v++ {
			sampleVar(g, assign, int32(v), rng.Float64())
		}
		if sweep >= opts.Burnin {
			for v := 0; v < n; v++ {
				if assign[v] {
					counts[v]++
				}
			}
			collected++
		}
		ob.observe(sweep+1, assign)
	}
	return collected, nil
}

// sweepObserver tracks per-sweep progress: flip counts (by diffing the
// previous sweep's assignment), cumulative sweep/flip counters, a live
// samples-per-second gauge, the caller's OnIteration callback, and —
// when OnCheckpoint is set — the convergence timeline tracker.
type sweepObserver struct {
	prev    []bool
	start   time.Time
	opts    Options
	sweeps  *obs.Counter
	flips   *obs.Counter
	sps     *obs.Gauge
	tracker *tracker
}

func newSweepObserver(assign []bool, opts Options) *sweepObserver {
	chain := strconv.Itoa(opts.Chain)
	o := &sweepObserver{
		prev:   append([]bool(nil), assign...),
		start:  time.Now(),
		opts:   opts,
		sweeps: obs.Default.Counter("probkb_infer_sweeps_total", obs.L("chain", chain)),
		flips:  obs.Default.Counter("probkb_infer_flips_total", obs.L("chain", chain)),
		sps:    obs.Default.Gauge("probkb_infer_samples_per_second"),
	}
	if opts.OnCheckpoint != nil {
		o.tracker = newTracker(len(assign), opts.TrackVars)
	}
	return o
}

// observe runs after each sweep (1-based), on the sampling goroutine.
func (o *sweepObserver) observe(sweep int, assign []bool) {
	flips := 0
	for v := range assign {
		if assign[v] != o.prev[v] {
			flips++
		}
		o.prev[v] = assign[v]
	}
	o.sweeps.Inc()
	o.flips.Add(int64(flips))
	obs.Gibbs.ObserveSweep(sweep)
	elapsed := time.Since(o.start)
	sps := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		sps = float64(sweep*len(assign)) / secs
		o.sps.Set(sps)
	}
	burnin := sweep <= o.opts.Burnin
	if o.opts.OnIteration != nil {
		o.opts.OnIteration(SweepStats{
			Sweep:   sweep,
			Burnin:  burnin,
			Vars:    len(assign),
			Flips:   flips,
			Elapsed: elapsed,
		})
	}
	if o.tracker != nil {
		if !burnin {
			o.tracker.record(assign)
		}
		last := sweep == o.opts.Burnin+o.opts.Samples
		if sweep%o.opts.CheckpointEvery == 0 || last {
			cp := Checkpoint{
				Sweep:         sweep,
				Burnin:        burnin,
				Vars:          len(assign),
				Flips:         flips,
				Elapsed:       elapsed,
				SamplesPerSec: sps,
				Tracked:       o.tracker.diagnostics(),
			}
			cp.RHatMax, cp.ESSMin = summarize(cp.Tracked)
			obs.Gibbs.ObserveRHat(cp.RHatMax)
			o.opts.OnCheckpoint(cp)
		}
	}
}

// finish runs once when the chain ends, on every exit path (completion
// or cancellation). It zeroes the samples-per-second gauge so a
// finished run does not advertise its last in-flight rate forever.
func (o *sweepObserver) finish() {
	o.sps.Set(0)
	obs.Gibbs.Done()
}

// Coloring holds a chromatic schedule: color[v] per variable, classes
// listing the variables of each color.
type Coloring struct {
	Colors  []int
	Classes [][]int32
}

// ColorGraph greedily colors the Markov-blanket graph: neighbors never
// share a color. Variables are visited in decreasing degree order
// (Welsh–Powell), which keeps the color count low on the hub-heavy
// graphs grounding produces.
func ColorGraph(g *factor.Graph) Coloring {
	n := g.NumVars()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(g.FactorsOf(order[a])) > len(g.FactorsOf(order[b]))
	})

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var classes [][]int32
	for _, v := range order {
		used := make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		for c >= len(classes) {
			classes = append(classes, nil)
		}
		classes[c] = append(classes[c], v)
	}
	return Coloring{Colors: colors, Classes: classes}
}

// Valid reports whether the coloring assigns distinct colors to every
// pair of neighboring variables (used by tests).
func (c Coloring) Valid(g *factor.Graph) bool {
	for v := int32(0); int(v) < g.NumVars(); v++ {
		for _, u := range g.Neighbors(v) {
			if c.Colors[v] == c.Colors[u] {
				return false
			}
		}
	}
	return true
}

// splitmix64 advances a per-variable RNG state and returns a uniform
// float64 in [0, 1). It is the cheap deterministic stream the chromatic
// sampler gives each variable, so results do not depend on the worker
// count or scheduling.
func splitmix64(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func runChromatic(ctx context.Context, g *factor.Graph, assign []bool, counts []int64, opts Options, ob *sweepObserver) (int, error) {
	coloring := ColorGraph(g)
	n := g.NumVars()

	// Sort each color class for memory locality, and seed one splitmix64
	// stream per variable for worker-count-independent determinism.
	for _, class := range coloring.Classes {
		sort.Slice(class, func(a, b int) bool { return class[a] < class[b] })
	}
	seeder := rand.New(rand.NewSource(opts.Seed))
	states := make([]uint64, n)
	for v := range states {
		states[v] = uint64(seeder.Int63())
	}

	collected := 0
	for sweep := 0; sweep < opts.Burnin+opts.Samples; sweep++ {
		for _, class := range coloring.Classes {
			// Cooperative cancellation: color classes are the natural
			// synchronization points of the chromatic schedule, so check
			// before each one.
			if err := ctx.Err(); err != nil {
				return collected, err
			}
			// All variables in one class are mutually non-adjacent, so
			// sampling them concurrently equals sampling them in any
			// sequential order. Small classes run inline: goroutine
			// dispatch would cost more than the sampling itself.
			workers := opts.Workers
			if perWorker := 512; len(class) < perWorker*2 {
				workers = 1
			} else if max := len(class) / perWorker; workers > max {
				workers = max
			}
			parallelFor(len(class), workers, func(i int) {
				v := class[i]
				sampleVar(g, assign, v, splitmix64(&states[v]))
			})
		}
		if sweep >= opts.Burnin {
			for v := 0; v < n; v++ {
				if assign[v] {
					counts[v]++
				}
			}
			collected++
		}
		ob.observe(sweep+1, assign)
	}
	return collected, nil
}

// parallelFor runs f(0..n-1) across at most workers goroutines.
func parallelFor(n, workers int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ApplyMarginals writes the estimated probabilities into the NULL weight
// cells of a TΠ table, completing the knowledge-expansion pipeline: after
// this call every inferred fact carries its marginal probability.
// Observed facts keep their extraction weights. The graph provides the
// fact-ID → variable mapping (fact IDs may be sparse after quality
// control).
func ApplyMarginals(g *factor.Graph, facts *engine.Table, probs []float64) error {
	if g.NumVars() != len(probs) {
		return fmt.Errorf("infer: %d marginals for %d variables", len(probs), g.NumVars())
	}
	ws := facts.Float64Col(kb.TPiW)
	ids := facts.Int32Col(kb.TPiI)
	for r := 0; r < facts.NumRows(); r++ {
		if !engine.IsNullFloat64(ws[r]) {
			continue
		}
		v, ok := g.VarOf(ids[r])
		if !ok {
			return fmt.Errorf("infer: fact %d has no graph variable", ids[r])
		}
		ws[r] = probs[v]
	}
	return nil
}
