package infer

import (
	"math"
	"time"
)

// Convergence timeline for a single sampling run: periodic checkpoints
// carrying split-half R-hat and effective sample size over a tracked
// subset of variables. Unlike MarginalsWithDiagnostics (which re-runs
// several chains after the fact), the timeline observes the one chain
// the run actually uses, as it runs — the durable convergence evidence
// a run journal records.

// VarDiag is one tracked variable's convergence state at a checkpoint.
type VarDiag struct {
	// Var is the graph variable index.
	Var int
	// Mean is the post-burn-in marginal estimate so far.
	Mean float64
	// RHat is the single-chain split-half potential scale reduction
	// factor over the collected samples; ~1 means the two halves agree.
	RHat float64
	// ESS is the autocorrelation-adjusted effective sample size.
	ESS float64
}

// Checkpoint is one periodic snapshot of a sampling run.
type Checkpoint struct {
	// Sweep is 1-based and counts burn-in sweeps.
	Sweep int
	// Burnin reports whether collection has not started yet.
	Burnin bool
	// Vars is the number of variables resampled per sweep.
	Vars int
	// Flips is how many variables changed value in the checkpoint's
	// sweep.
	Flips int
	// Elapsed is wall time since the run started.
	Elapsed time.Duration
	// SamplesPerSec is cumulative variable-resample throughput.
	SamplesPerSec float64
	// RHatMax and ESSMin summarize the tracked variables; both are 0
	// until enough post-burn-in samples exist (minDiagSamples).
	RHatMax float64
	ESSMin  float64
	// Tracked has one entry per tracked variable, in variable order;
	// empty before diagnostics start.
	Tracked []VarDiag
}

// DefaultCheckpointEvery is the sweep interval between checkpoints when
// a checkpoint observer is installed without an explicit interval.
const DefaultCheckpointEvery = 25

// defaultTrackVars caps how many variables the timeline samples for
// per-atom diagnostics; tracking everything would make each checkpoint
// O(vars · samples).
const defaultTrackVars = 32

// minDiagSamples is the minimum post-burn-in history length before
// split-half R-hat and ESS are reported; halves shorter than 4 samples
// are noise.
const minDiagSamples = 8

// tracker records the post-burn-in 0/1 history of a strided subset of
// variables and computes checkpoint diagnostics on demand.
type tracker struct {
	vars    []int32   // tracked variable indices, ascending
	history [][]uint8 // per tracked var, one byte per collected sweep
}

// newTracker picks up to cap variables with a uniform stride so hubs
// and leaves both get sampled.
func newTracker(n, cap int) *tracker {
	if cap <= 0 {
		cap = defaultTrackVars
	}
	if cap > n {
		cap = n
	}
	t := &tracker{}
	if cap == 0 {
		return t
	}
	stride := n / cap
	if stride < 1 {
		stride = 1
	}
	for v := 0; v < n && len(t.vars) < cap; v += stride {
		t.vars = append(t.vars, int32(v))
	}
	t.history = make([][]uint8, len(t.vars))
	return t
}

// record appends the current assignment of every tracked variable
// (call once per post-burn-in sweep).
func (t *tracker) record(assign []bool) {
	for i, v := range t.vars {
		b := uint8(0)
		if assign[v] {
			b = 1
		}
		t.history[i] = append(t.history[i], b)
	}
}

// diagnostics computes per-variable split-half R-hat and ESS over the
// history collected so far; it returns nil until minDiagSamples sweeps
// are in.
func (t *tracker) diagnostics() []VarDiag {
	if len(t.vars) == 0 || len(t.history[0]) < minDiagSamples {
		return nil
	}
	out := make([]VarDiag, len(t.vars))
	for i, v := range t.vars {
		h := t.history[i]
		out[i] = VarDiag{
			Var:  int(v),
			Mean: meanU8(h),
			RHat: splitRHat(h),
			ESS:  essBinary(h),
		}
	}
	return out
}

func meanU8(h []uint8) float64 {
	var s float64
	for _, b := range h {
		s += float64(b)
	}
	return s / float64(len(h))
}

// splitRHat is the Gelman–Rubin potential scale reduction factor with
// the single chain split into halves (m = 2) — the same formula
// MarginalsWithDiagnostics applies across independent chains, which
// catches slow drift within one chain: a chain still trending has
// halves with different means and an R-hat above 1.
func splitRHat(h []uint8) float64 {
	half := len(h) / 2
	if half < 2 {
		return 0
	}
	// Drop a leftover odd sample from the front (the older half).
	a, b := h[len(h)-2*half:len(h)-half], h[len(h)-half:]
	pa, pb := meanU8(a), meanU8(b)
	mean := (pa + pb) / 2
	n := float64(half)

	// Between-half variance of the means (times n).
	da, db := pa-mean, pb-mean
	B := (da*da + db*db) * n // m-1 = 1

	// Within-half variance of Bernoulli draws: p(1-p)·n/(n-1).
	W := (pa*(1-pa) + pb*(1-pb)) / 2 * n / (n - 1)

	if W <= 1e-12 {
		if B <= 1e-12 {
			return 1 // pinned in both halves and agreeing: converged
		}
		// Pinned halves that disagree: divergent. A finite sentinel
		// instead of +Inf keeps the value JSON-encodable downstream.
		return degenerateRHat
	}
	varPlus := (n-1)/n*W + B/n
	return math.Sqrt(varPlus / W)
}

// degenerateRHat stands in for an infinite R-hat (two pinned,
// disagreeing split halves) so diagnostics stay JSON-encodable.
const degenerateRHat = 1e9

// essBinary estimates the effective sample size of a 0/1 series as
// n / (1 + 2·Σρ_k), summing autocorrelations until they fall below
// 0.05 or the lag cap. A pinned series has undefined autocorrelation;
// its draws are exact, so ESS = n.
func essBinary(h []uint8) float64 {
	n := len(h)
	mean := meanU8(h)
	var c0 float64
	for _, b := range h {
		d := float64(b) - mean
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 <= 1e-12 {
		return float64(n)
	}
	maxLag := n / 2
	if maxLag > 200 {
		maxLag = 200
	}
	var acSum float64
	for k := 1; k <= maxLag; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (float64(h[i]) - mean) * (float64(h[i+k]) - mean)
		}
		rho := ck / float64(n) / c0
		if rho < 0.05 {
			break
		}
		acSum += rho
	}
	ess := float64(n) / (1 + 2*acSum)
	if ess > float64(n) {
		ess = float64(n)
	}
	return ess
}

// summarize reduces per-variable diagnostics to the checkpoint's
// RHatMax/ESSMin pair.
func summarize(diags []VarDiag) (rhatMax, essMin float64) {
	for i, d := range diags {
		if d.RHat > rhatMax {
			rhatMax = d.RHat
		}
		if i == 0 || d.ESS < essMin {
			essMin = d.ESS
		}
	}
	return rhatMax, essMin
}
