package infer

import (
	"math"
	"math/rand"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/factor"
	"probkb/internal/ground"
	"probkb/internal/kb"
)

// oracleTol is the allowed |gibbs - exact| per marginal. With 8000
// collected sweeps the Monte Carlo standard error is below 0.006, so
// 0.05 is ~9 sigma — a failure means a kernel bug, not noise.
const oracleTol = 0.05

// TestGibbsDifferentialOracle is the inference leg of the differential
// harness: random factor graphs of up to 12 variables, with the exact
// enumeration oracle as ground truth. Each graph runs through the
// sequential sweep and the chromatic sampler at two worker counts; every
// marginal must sit within oracleTol of the oracle, and the two
// chromatic runs must agree bit-for-bit (the per-variable splitmix64
// streams make the schedule worker-count independent).
func TestGibbsDifferentialOracle(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 3+rng.Intn(10))
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Burnin: 500, Samples: 8000, Seed: seed}

		seq := Marginals(g, opts)

		chromaticOpts := opts
		chromaticOpts.Parallel = true
		chromaticOpts.Workers = 1
		chrom1 := Marginals(g, chromaticOpts)
		chromaticOpts.Workers = 4
		chrom4 := Marginals(g, chromaticOpts)

		for v := range exact {
			if d := math.Abs(seq[v] - exact[v]); d > oracleTol {
				t.Errorf("seed %d var %d: sequential %v vs exact %v (|Δ|=%v)", seed, v, seq[v], exact[v], d)
			}
			if d := math.Abs(chrom1[v] - exact[v]); d > oracleTol {
				t.Errorf("seed %d var %d: chromatic %v vs exact %v (|Δ|=%v)", seed, v, chrom1[v], exact[v], d)
			}
			if chrom1[v] != chrom4[v] {
				t.Errorf("seed %d var %d: chromatic diverges across worker counts: %v (w=1) vs %v (w=4)",
					seed, v, chrom1[v], chrom4[v])
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// bigSparseGraph builds a graph large enough that the chromatic sampler
// actually fans color classes out across workers (classes of ≥1024
// variables run parallel; smaller ones are sampled inline).
func bigSparseGraph(t *testing.T, n int) *factor.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	facts := engine.NewTable("T", kb.FactsSchema())
	for i := 0; i < n; i++ {
		facts.AppendRow(i, 0, i, 0, i, 0, engine.NullFloat64())
	}
	factors := engine.NewTable("TPhi", ground.FactorSchema())
	for v := 0; v < n; v++ {
		factors.AppendRow(v, null, null, rng.Float64()*3-1.5)
	}
	// A sparse layer of implication factors so the coloring is nontrivial
	// but the big color classes stay big.
	for i := 0; i < n/8; i++ {
		head := rng.Intn(n)
		body := rng.Intn(n)
		if body == head {
			body = (body + 1) % n
		}
		factors.AppendRow(head, body, null, rng.Float64())
	}
	g, err := factor.FromTables(facts, factors)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChromaticDeterministicAcrossWorkers pins the chromatic sampler's
// central guarantee at a size where the worker pool really engages:
// identical marginals — bitwise — for every worker count.
func TestChromaticDeterministicAcrossWorkers(t *testing.T) {
	g := bigSparseGraph(t, 4096)
	opts := Options{Burnin: 5, Samples: 20, Seed: 42, Parallel: true}

	var ref []float64
	for _, w := range []int{1, 2, 8} {
		o := opts
		o.Workers = w
		probs := Marginals(g, o)
		if ref == nil {
			ref = probs
			continue
		}
		for v := range ref {
			if math.Float64bits(probs[v]) != math.Float64bits(ref[v]) {
				t.Fatalf("workers=%d var %d: %v differs from workers=1 result %v", w, v, probs[v], ref[v])
			}
		}
	}
}
