package infer

import (
	"math/rand"
	"testing"
)

func TestSplitRHat(t *testing.T) {
	alternating := make([]uint8, 200)
	for i := range alternating {
		alternating[i] = uint8(i % 2)
	}
	if r := splitRHat(alternating); r < 0.9 || r > 1.05 {
		t.Fatalf("well-mixed chain R-hat = %g, want ~1", r)
	}

	// A drifting chain: first half all 0, second half all 1 — the
	// split-half comparison exists exactly to catch this.
	drift := make([]uint8, 200)
	for i := 100; i < 200; i++ {
		drift[i] = 1
	}
	if r := splitRHat(drift); r != degenerateRHat {
		t.Fatalf("pinned-disagreeing halves R-hat = %g, want sentinel %g", r, degenerateRHat)
	}

	// A mostly-drifted chain with some mixing still scores far above 1.
	noisy := make([]uint8, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range noisy {
		p := 0.05
		if i >= 100 {
			p = 0.95
		}
		if rng.Float64() < p {
			noisy[i] = 1
		}
	}
	if r := splitRHat(noisy); r < 1.5 {
		t.Fatalf("drifting chain R-hat = %g, want >> 1", r)
	}

	// Pinned and agreeing: converged, R-hat exactly 1.
	if r := splitRHat(make([]uint8, 100)); r != 1 {
		t.Fatalf("constant chain R-hat = %g, want 1", r)
	}

	// Too short for halves.
	if r := splitRHat([]uint8{0, 1, 0}); r != 0 {
		t.Fatalf("short chain R-hat = %g, want 0", r)
	}
}

func TestESSBinary(t *testing.T) {
	// Independent draws: ESS ~ n.
	rng := rand.New(rand.NewSource(2))
	iid := make([]uint8, 400)
	for i := range iid {
		if rng.Float64() < 0.5 {
			iid[i] = 1
		}
	}
	if ess := essBinary(iid); ess < 200 {
		t.Fatalf("iid ESS = %g, want close to n=400", ess)
	}

	// Strongly autocorrelated draws (long runs): ESS << n.
	sticky := make([]uint8, 400)
	state := uint8(0)
	for i := range sticky {
		if rng.Float64() < 0.02 { // flip rarely
			state = 1 - state
		}
		sticky[i] = state
	}
	if ess := essBinary(sticky); ess > 100 {
		t.Fatalf("sticky ESS = %g, want far below n=400", ess)
	}

	// Pinned series: exact draws, ESS = n.
	if ess := essBinary(make([]uint8, 50)); ess != 50 {
		t.Fatalf("pinned ESS = %g, want n=50", ess)
	}
}

func TestTrackerStride(t *testing.T) {
	tr := newTracker(1000, 32)
	if len(tr.vars) != 32 {
		t.Fatalf("tracked %d vars, want 32", len(tr.vars))
	}
	// Strided, not the first 32: the last tracked var sits deep in the
	// index space.
	if tr.vars[len(tr.vars)-1] < 500 {
		t.Fatalf("tracked vars not strided: %v", tr.vars)
	}

	// Fewer vars than the cap: track all of them.
	if tr := newTracker(5, 32); len(tr.vars) != 5 {
		t.Fatalf("small graph tracked %d vars, want 5", len(tr.vars))
	}

	// Diagnostics stay nil until minDiagSamples sweeps are recorded.
	tr = newTracker(4, 4)
	assign := []bool{true, false, true, false}
	for i := 0; i < minDiagSamples-1; i++ {
		tr.record(assign)
	}
	if d := tr.diagnostics(); d != nil {
		t.Fatalf("diagnostics before %d samples: %+v", minDiagSamples, d)
	}
	tr.record(assign)
	diags := tr.diagnostics()
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %+v", diags)
	}
	if diags[0].Mean != 1 || diags[1].Mean != 0 {
		t.Fatalf("means = %+v", diags)
	}
}

// TestCheckpointObserver runs real Gibbs sampling with an observer and
// checks checkpoints arrive on cadence with eventually-live diagnostics.
func TestCheckpointObserver(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(5)), 20)
	var cps []Checkpoint
	opts := Options{
		Burnin:          50,
		Samples:         200,
		Seed:            3,
		CheckpointEvery: 25,
		OnCheckpoint:    func(cp Checkpoint) { cps = append(cps, cp) },
	}
	if probs := Marginals(g, opts); len(probs) != 20 {
		t.Fatalf("marginals = %d vars, want 20", len(probs))
	}
	// Sweeps 25,50,...,250: 10 checkpoints (250 is both on-cadence and
	// final).
	if len(cps) != 10 {
		t.Fatalf("got %d checkpoints, want 10", len(cps))
	}
	if !cps[0].Burnin || cps[0].Sweep != 25 {
		t.Fatalf("first checkpoint = %+v", cps[0])
	}
	last := cps[len(cps)-1]
	if last.Sweep != 250 || last.Burnin {
		t.Fatalf("last checkpoint = %+v", last)
	}
	if last.RHatMax <= 0 || last.ESSMin <= 0 || len(last.Tracked) == 0 {
		t.Fatalf("final checkpoint has no diagnostics: %+v", last)
	}
	for _, d := range last.Tracked {
		if d.Mean < 0 || d.Mean > 1 {
			t.Fatalf("tracked mean out of range: %+v", d)
		}
	}
}
