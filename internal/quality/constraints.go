// Package quality implements the quality-control methods of Section 5 of
// the paper: semantic (functional) constraints, ambiguity detection, and
// rule cleaning. These are what keep a machine-constructed KB from
// drowning in propagated errors during knowledge expansion.
package quality

import (
	"fmt"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/obs"
)

func init() {
	obs.Default.Help("probkb_quality_violations_total", "Functional-constraint violations found by Query 3 runs.")
	obs.Default.Help("probkb_quality_facts_deleted_total", "Facts deleted to repair constraint violations.")
}

// Violation is one entity flagged by a functional constraint: Entity (in
// class Class) participates in relation Rel with more distinct partners
// than the constraint's degree allows. Type tells which argument position
// the entity held.
type Violation struct {
	Entity int32
	Class  int32
	Rel    int32
	Type   int // kb.TypeI or kb.TypeII
	Count  int // distinct partners observed
	Degree int // allowed degree δ
}

// Checker applies a KB's functional constraints to facts tables in
// batches (Query 3 of the paper): one grouped join per constraint type
// instead of one trigger per relation.
type Checker struct {
	fc *engine.Table
}

// NewChecker builds a checker from the KB's constraint set Ω.
func NewChecker(k *kb.KB) *Checker {
	return &Checker{fc: k.ConstraintsTable()}
}

// NumConstraints returns the number of constraints loaded.
func (c *Checker) NumConstraints() int { return c.fc.NumRows() }

// Violations computes, without deleting anything, every entity that
// violates a functional constraint in tpi.
func (c *Checker) Violations(tpi *engine.Table) []Violation {
	var out []Violation
	out = append(out, c.violationsOfType(tpi, kb.TypeI)...)
	out = append(out, c.violationsOfType(tpi, kb.TypeII)...)
	return out
}

// violationsOfType runs the grouped join for one functionality type.
//
// Type I groups by (R, x, C1, C2) and counts distinct y; Type II groups
// by (R, y, C2, C1) and counts distinct x.
func (c *Checker) violationsOfType(tpi *engine.Table, typ int) []Violation {
	fcFiltered := engine.NewFilter(engine.NewScan(c.fc),
		fmt.Sprintf("FC.arg = %d", typ),
		func(t *engine.Table, r int) bool {
			return t.Int32Col(kb.TOmegaType)[r] == int32(typ)
		})

	entCol, entClsCol, otherCol, otherClsCol := kb.TPiX, kb.TPiC1, kb.TPiY, kb.TPiC2
	if typ == kb.TypeII {
		entCol, entClsCol, otherCol, otherClsCol = kb.TPiY, kb.TPiC2, kb.TPiX, kb.TPiC1
	}

	// Join: T ⋈ FC on T.R = FC.R; output (R, ent, entCls, otherCls,
	// other, deg).
	join := engine.NewHashJoin(fcFiltered, engine.NewScan(tpi),
		[]int{kb.TOmegaR}, []int{kb.TPiR},
		[]engine.JoinOut{
			engine.ProbeCol("R", kb.TPiR),
			engine.ProbeCol("ent", entCol),
			engine.ProbeCol("entCls", entClsCol),
			engine.ProbeCol("otherCls", otherClsCol),
			engine.ProbeCol("other", otherCol),
			engine.BuildCol("deg", kb.TOmegaDeg),
		},
		"T.R = FC.R")

	// GROUP BY R, ent, entCls, otherCls HAVING COUNT(DISTINCT other) >
	// MIN(deg).
	grouped := engine.NewGroupBy(join, []int{0, 1, 2, 3}, []engine.AggSpec{
		{Kind: engine.AggCountDistinct, Col: 4, Name: "n"},
		{Kind: engine.AggMinF64, Col: 5, Name: "deg"},
	})
	having := engine.NewFilter(grouped, "count(distinct) > min(deg)",
		func(t *engine.Table, r int) bool {
			return float64(t.Int32Col(4)[r]) > t.Float64Col(5)[r]
		})

	res, err := having.Run()
	if err != nil {
		// The plan is static program data; failures are programming
		// errors, not runtime conditions.
		panic(fmt.Sprintf("quality: constraint query failed: %v", err))
	}

	out := make([]Violation, 0, res.NumRows())
	for r := 0; r < res.NumRows(); r++ {
		out = append(out, Violation{
			Rel:    res.Int32Col(0)[r],
			Entity: res.Int32Col(1)[r],
			Class:  res.Int32Col(2)[r],
			Type:   typ,
			Count:  int(res.Int32Col(4)[r]),
			Degree: int(res.Float64Col(5)[r]),
		})
	}
	return out
}

// Repair summarizes one constraint pass that found violations: how many
// entities violated a constraint and how many facts the greedy deletion
// removed. Run journals record one Repair per acting Query 3 pass.
type Repair struct {
	Violations int
	Deleted    int
}

// Apply is Query 3: find every violating entity and greedily delete its
// facts. Matching the paper's query exactly, deletion is by the
// *violated position*: a Type I violator (x, C1) loses the facts where
// it appears as the subject with that class; a Type II violator (y, C2)
// those where it is the object. It returns the number of deleted rows.
// This is the ConstraintHook the grounders call each iteration.
func (c *Checker) Apply(tpi *engine.Table) int {
	n, _ := c.apply(tpi)
	return n
}

// apply runs Query 3 and additionally reports how many violations drove
// the deletion.
func (c *Checker) apply(tpi *engine.Table) (deleted, violations int) {
	if c.fc.NumRows() == 0 {
		return 0, 0
	}
	viol := c.Violations(tpi)
	if len(viol) == 0 {
		return 0, 0
	}
	type entCls struct{ e, c int32 }
	badSubj := make(map[entCls]bool)
	badObj := make(map[entCls]bool)
	for _, v := range viol {
		if v.Type == kb.TypeI {
			badSubj[entCls{v.Entity, v.Class}] = true
		} else {
			badObj[entCls{v.Entity, v.Class}] = true
		}
	}
	xs, c1s := tpi.Int32Col(kb.TPiX), tpi.Int32Col(kb.TPiC1)
	ys, c2s := tpi.Int32Col(kb.TPiY), tpi.Int32Col(kb.TPiC2)
	deleted = tpi.DeleteWhere(func(r int) bool {
		return badSubj[entCls{xs[r], c1s[r]}] || badObj[entCls{ys[r], c2s[r]}]
	})
	obs.Default.Counter("probkb_quality_violations_total").Add(int64(len(viol)))
	obs.Default.Counter("probkb_quality_facts_deleted_total").Add(int64(deleted))
	return deleted, len(viol)
}

// Hook adapts the checker to ground.Options.ConstraintHook.
func (c *Checker) Hook() func(*engine.Table) int {
	return c.Apply
}

// HookWithObserver is Hook plus a repair observer: onRepair fires after
// every pass that found violations, carrying the violation and deletion
// counts (a run journal's constraint_repair feed).
func (c *Checker) HookWithObserver(onRepair func(Repair)) func(*engine.Table) int {
	return func(tpi *engine.Table) int {
		deleted, violations := c.apply(tpi)
		if violations > 0 && onRepair != nil {
			onRepair(Repair{Violations: violations, Deleted: deleted})
		}
		return deleted
	}
}

// PreClean runs Query 3 once over a KB's own fact set — the "run once
// before inference starts" step of Section 6.1.1 — removing violating
// entities' facts in place and returning how many facts were dropped.
func PreClean(k *kb.KB) int {
	checker := NewChecker(k)
	tpi := k.FactsTable()
	n := checker.Apply(tpi)
	if n > 0 {
		kept := make([]kb.Fact, 0, tpi.NumRows())
		for r := 0; r < tpi.NumRows(); r++ {
			kept = append(kept, kb.FactAtRow(tpi, r))
		}
		k.ReplaceFacts(kept)
	}
	return n
}

// AmbiguousEntities implements the ambiguity detection of Section 5.2:
// entities flagged by functional-constraint violations, the dominant
// symptom of one surface name covering several real-world entities. It
// returns the distinct (entity, class) pairs.
func (c *Checker) AmbiguousEntities(tpi *engine.Table) []Violation {
	viol := c.Violations(tpi)
	type entCls struct{ e, c int32 }
	seen := make(map[entCls]bool)
	out := make([]Violation, 0, len(viol))
	for _, v := range viol {
		k := entCls{v.Entity, v.Class}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}
