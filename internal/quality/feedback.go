package quality

import (
	"sort"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mln"
)

// Constraint-informed rule cleaning: the paper closes its quality study
// with "incorrect rules lead to constraint violations. Thus, it is
// possible to use semantic constraints to improve rule learners"
// (§6.2.3). This file implements that future-work idea: run a bounded
// expansion, attribute every constraint violation to the rules that
// could have derived the violating facts in one step, and penalize those
// rules' statistical-significance scores before thresholding.

// RuleFeedback is one rule's violation attribution.
type RuleFeedback struct {
	Index      int // position in KB.Rules
	Derived    int // inferred facts this rule can one-step derive
	Implicated int // of those, facts of constraint-violating entities
	// Penalty in [0, 1): the implicated fraction, Laplace-damped.
	Penalty float64
}

// AttributeViolations grounds the KB for up to maxIters iterations
// (without deletions — the evidence must stay in place), finds the
// functional-constraint violations, and attributes them to rules.
func AttributeViolations(k *kb.KB, maxIters int) ([]RuleFeedback, error) {
	res, err := ground.Ground(k, ground.Options{MaxIterations: maxIters, SkipFactors: true})
	if err != nil {
		return nil, err
	}
	tpi := res.Facts
	viol := NewChecker(k).Violations(tpi)

	// Violating (entity, class) pairs by argument position.
	type entCls struct{ e, c int32 }
	badSubj := make(map[entCls]bool)
	badObj := make(map[entCls]bool)
	for _, v := range viol {
		if v.Type == kb.TypeI {
			badSubj[entCls{v.Entity, v.Class}] = true
		} else {
			badObj[entCls{v.Entity, v.Class}] = true
		}
	}

	// Index the expanded facts by (rel, c1, c2) for derivation checks.
	type sig struct{ rel, c1, c2 int32 }
	type pair struct{ x, y int32 }
	bySig := make(map[sig][]pair)
	for r := 0; r < tpi.NumRows(); r++ {
		s := sig{tpi.Int32Col(kb.TPiR)[r], tpi.Int32Col(kb.TPiC1)[r], tpi.Int32Col(kb.TPiC2)[r]}
		bySig[s] = append(bySig[s], pair{tpi.Int32Col(kb.TPiX)[r], tpi.Int32Col(kb.TPiY)[r]})
	}
	zOf := func(a mln.Atom, p pair) int32 {
		if a.Arg1 == mln.Z {
			return p.x
		}
		return p.y
	}
	headValOf := func(a mln.Atom, p pair) (mln.Var, int32) {
		if a.Arg1 == mln.Z {
			return a.Arg2, p.y
		}
		return a.Arg1, p.x
	}

	out := make([]RuleFeedback, len(k.Rules))
	for i := range k.Rules {
		c := &k.Rules[i]
		fb := RuleFeedback{Index: i}
		count := func(xv, yv int32) {
			fb.Derived++
			if badSubj[entCls{xv, c.Class[mln.X]}] || badObj[entCls{yv, c.Class[mln.Y]}] {
				fb.Implicated++
			}
		}
		b0 := c.Body[0]
		s0 := sig{b0.Rel, c.Class[b0.Arg1], c.Class[b0.Arg2]}
		if len(c.Body) == 1 {
			for _, p := range bySig[s0] {
				val := map[mln.Var]int32{b0.Arg1: p.x, b0.Arg2: p.y}
				count(val[mln.X], val[mln.Y])
			}
		} else {
			b1 := c.Body[1]
			s1 := sig{b1.Rel, c.Class[b1.Arg1], c.Class[b1.Arg2]}
			byZ := make(map[int32][]pair)
			for _, p := range bySig[s1] {
				byZ[zOf(b1, p)] = append(byZ[zOf(b1, p)], p)
			}
			for _, p0 := range bySig[s0] {
				hv0, val0 := headValOf(b0, p0)
				for _, p1 := range byZ[zOf(b0, p0)] {
					hv1, val1 := headValOf(b1, p1)
					vals := map[mln.Var]int32{hv0: val0, hv1: val1}
					count(vals[mln.X], vals[mln.Y])
				}
			}
		}
		fb.Penalty = float64(fb.Implicated) / float64(fb.Derived+2)
		out[i] = fb
	}
	return out, nil
}

// CleanRulesWithConstraints keeps the top-θ rules ranked by
// constraint-adjusted significance: score × (1 − penalty). Rules whose
// conclusions concentrate on constraint-violating entities sink in the
// ranking even when their raw body-support score looks healthy — the
// failure mode the paper observes for score-only cleaning ("incorrect
// rules with a high score").
func CleanRulesWithConstraints(k *kb.KB, theta float64, maxIters int) (*kb.KB, error) {
	if theta >= 1 {
		return k.Clone(), nil
	}
	scores := ScoreRules(k)
	feedback, err := AttributeViolations(k, maxIters)
	if err != nil {
		return nil, err
	}
	adjusted := make([]float64, len(scores))
	for i := range scores {
		adjusted[i] = scores[i].Score * (1 - feedback[i].Penalty)
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if adjusted[order[a]] != adjusted[order[b]] {
			return adjusted[order[a]] > adjusted[order[b]]
		}
		// Equal adjusted scores (commonly both zero): prefer the less
		// implicated rule.
		return feedback[order[a]].Penalty < feedback[order[b]].Penalty
	})
	keep := int(float64(len(scores))*theta + 0.5)
	if keep < 1 && len(scores) > 0 {
		keep = 1
	}
	keepSet := make(map[int]bool, keep)
	for _, i := range order[:keep] {
		keepSet[i] = true
	}
	out := k.Clone()
	out.Rules = out.Rules[:0]
	for i, r := range k.Rules {
		if keepSet[i] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out, nil
}

var _ = engine.NullInt32 // engine types appear in signatures upstream
