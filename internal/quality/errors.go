package quality

import "fmt"

// ErrorSource is the taxonomy of Figure 7(b): why a constraint violation
// (or an incorrect inferred fact) happened. The synthetic-KB oracle
// (internal/synth) assigns these labels; real deployments would need the
// human judging the paper used.
type ErrorSource int

// The error sources of Section 5 / Figure 7(b).
const (
	// SrcAmbiguousEntity: one surface name covering several real-world
	// entities (E3), detected directly through its own violations.
	SrcAmbiguousEntity ErrorSource = iota
	// SrcAmbiguousJoinKey: an erroneous fact inferred *through* an
	// ambiguous entity used as a join key.
	SrcAmbiguousJoinKey
	// SrcIncorrectRule: an erroneous fact produced by an unsound rule (E2).
	SrcIncorrectRule
	// SrcIncorrectExtraction: a wrong base fact from the extractor (E1).
	SrcIncorrectExtraction
	// SrcGeneralType: violations caused by legitimately general classes
	// (both New York and U.S. are Places).
	SrcGeneralType
	// SrcSynonym: two names for the same real-world entity.
	SrcSynonym
	// SrcPropagated: an error derived from other erroneous facts (E4).
	SrcPropagated
	// NumErrorSources is the taxonomy size.
	NumErrorSources
)

// String names the error source as in Figure 7(b).
func (s ErrorSource) String() string {
	switch s {
	case SrcAmbiguousEntity:
		return "Ambiguities (detected)"
	case SrcAmbiguousJoinKey:
		return "Ambiguous join keys"
	case SrcIncorrectRule:
		return "Incorrect rules"
	case SrcIncorrectExtraction:
		return "Incorrect extractions"
	case SrcGeneralType:
		return "General types"
	case SrcSynonym:
		return "Synonyms"
	case SrcPropagated:
		return "Propagated errors"
	default:
		return fmt.Sprintf("ErrorSource(%d)", int(s))
	}
}

// Breakdown tallies error sources, the data behind Figure 7(b).
type Breakdown [NumErrorSources]int

// Total returns the number of categorized items.
func (b Breakdown) Total() int {
	t := 0
	for _, n := range b {
		t += n
	}
	return t
}

// Fraction returns source s's share, or 0 for an empty breakdown.
func (b Breakdown) Fraction(s ErrorSource) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[s]) / float64(t)
}

// String renders the breakdown as percentage lines.
func (b Breakdown) String() string {
	out := ""
	for s := ErrorSource(0); s < NumErrorSources; s++ {
		if b[s] == 0 {
			continue
		}
		out += fmt.Sprintf("%-24s %5.1f%% (%d)\n", s.String(), 100*b.Fraction(s), b[s])
	}
	return out
}
