package quality

import (
	"testing"

	"probkb/internal/kb"
)

// feedbackKB: a wrong rule copies located_in into the functional
// capital_of, creating violations; a sound rule with identical raw
// support copies visited into liked (unconstrained).
func feedbackKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	// located_in: one country, many cities.
	k.InternFact("located_in", "Lyon", "City", "France", "Country", 0.9)
	k.InternFact("located_in", "Nice", "City", "France", "Country", 0.9)
	k.InternFact("capital_of", "Paris", "City", "France", "Country", 0.9)
	// Equal-support benign pair.
	k.InternFact("visited", "A", "Person", "X", "City", 0.9)
	k.InternFact("visited", "B", "Person", "Y", "City", 0.9)

	for _, line := range []string{
		"0.9 capital_of(x:City, y:Country) :- located_in(x:City, y:Country)", // wrong: floods capital_of
		"0.9 liked(x:Person, y:City) :- visited(x:Person, y:City)",           // benign
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	capitalOf, _ := k.RelDict.Lookup("capital_of")
	if err := k.AddConstraint(kb.Constraint{Rel: capitalOf, Type: kb.TypeII, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAttributeViolations(t *testing.T) {
	k := feedbackKB(t)
	fb, err := AttributeViolations(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 2 {
		t.Fatalf("feedback entries = %d", len(fb))
	}
	wrong, benign := fb[0], fb[1]
	if wrong.Derived != 2 || wrong.Implicated != 2 {
		t.Fatalf("wrong-rule attribution = %+v", wrong)
	}
	if benign.Implicated != 0 {
		t.Fatalf("benign rule implicated: %+v", benign)
	}
	if wrong.Penalty <= benign.Penalty {
		t.Fatalf("penalties: wrong %v vs benign %v", wrong.Penalty, benign.Penalty)
	}
}

func TestCleanRulesWithConstraints(t *testing.T) {
	k := feedbackKB(t)

	// Raw score-based cleaning cannot separate the two rules (equal
	// support: neither head is observed), so which one survives is a
	// tie; constraint-informed cleaning must keep the benign one.
	cleaned, err := CleanRulesWithConstraints(k, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned.Rules) != 1 {
		t.Fatalf("kept %d rules", len(cleaned.Rules))
	}
	liked, _ := k.RelDict.Lookup("liked")
	if cleaned.Rules[0].Head.Rel != liked {
		t.Fatalf("kept the wrong rule: head %s", k.RelDict.Name(cleaned.Rules[0].Head.Rel))
	}

	// θ = 1 keeps everything and copies.
	all, err := CleanRulesWithConstraints(k, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rules) != 2 {
		t.Fatal("θ=1 should keep all rules")
	}
}
