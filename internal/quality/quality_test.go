package quality

import (
	"strings"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/ground"
	"probkb/internal/kb"
	"probkb/internal/mpp"
)

// ambiguityKB reconstructs the Mandel example of Figure 5: one surface
// name ("Mandel") born in three different places under a functional
// born_in.
func ambiguityKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	k.InternFact("born_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.InternFact("born_in", "Mandel", "Person", "New_York_City", "City", 0.9)
	k.InternFact("born_in", "Mandel", "Person", "Chicago", "City", 0.9)
	k.InternFact("born_in", "Freud", "Person", "Vienna", "City", 0.9)
	k.InternFact("live_in", "Rothman", "Person", "Baltimore", "City", 0.9)
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestViolationsTypeI(t *testing.T) {
	k := ambiguityKB(t)
	c := NewChecker(k)
	if c.NumConstraints() != 1 {
		t.Fatalf("constraints = %d", c.NumConstraints())
	}
	tpi := k.FactsTable()
	viol := c.Violations(tpi)
	if len(viol) != 1 {
		t.Fatalf("violations = %+v, want 1", viol)
	}
	mandel, _ := k.Entities.Lookup("Mandel")
	v := viol[0]
	if v.Entity != mandel || v.Count != 3 || v.Degree != 1 || v.Type != kb.TypeI {
		t.Fatalf("violation = %+v", v)
	}
}

func TestViolationsTypeII(t *testing.T) {
	// capital_of is Type II: a country has one capital.
	k := kb.New()
	k.InternFact("capital_of", "Delhi", "City", "India", "Country", 0.9)
	k.InternFact("capital_of", "Calcutta", "City", "India", "Country", 0.9)
	k.InternFact("capital_of", "Paris", "City", "France", "Country", 0.9)
	capitalOf, _ := k.RelDict.Lookup("capital_of")
	if err := k.AddConstraint(kb.Constraint{Rel: capitalOf, Type: kb.TypeII, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(k)
	viol := c.Violations(k.FactsTable())
	if len(viol) != 1 {
		t.Fatalf("violations = %+v", viol)
	}
	india, _ := k.Entities.Lookup("India")
	if viol[0].Entity != india || viol[0].Type != kb.TypeII {
		t.Fatalf("violation = %+v", viol[0])
	}
}

func TestPseudoFunctionalDegree(t *testing.T) {
	// live_in with degree 2: two residences fine, three is a violation.
	k := kb.New()
	k.InternFact("live_in", "A", "Person", "X", "Country", 0.9)
	k.InternFact("live_in", "A", "Person", "Y", "Country", 0.9)
	k.InternFact("live_in", "B", "Person", "X", "Country", 0.9)
	k.InternFact("live_in", "B", "Person", "Y", "Country", 0.9)
	k.InternFact("live_in", "B", "Person", "Z", "Country", 0.9)
	liveIn, _ := k.RelDict.Lookup("live_in")
	if err := k.AddConstraint(kb.Constraint{Rel: liveIn, Type: kb.TypeI, Degree: 2}); err != nil {
		t.Fatal(err)
	}
	viol := NewChecker(k).Violations(k.FactsTable())
	if len(viol) != 1 {
		t.Fatalf("violations = %+v", viol)
	}
	b, _ := k.Entities.Lookup("B")
	if viol[0].Entity != b {
		t.Fatalf("violation = %+v", viol[0])
	}
}

func TestApplyDeletesViolatingEntities(t *testing.T) {
	k := ambiguityKB(t)
	c := NewChecker(k)
	tpi := k.FactsTable()
	deleted := c.Apply(tpi)
	// All three Mandel facts go; Freud and Rothman stay.
	if deleted != 3 {
		t.Fatalf("deleted = %d, want 3", deleted)
	}
	if tpi.NumRows() != 2 {
		t.Fatalf("remaining = %d, want 2", tpi.NumRows())
	}
	// Idempotent once clean.
	if again := c.Apply(tpi); again != 0 {
		t.Fatalf("second apply deleted %d", again)
	}
}

func TestApplyDeletesByViolatedPosition(t *testing.T) {
	// Query 3 deletes by the violated argument position: a Type I
	// violator loses its subject-position facts — across all relations —
	// but keeps facts where it is merely the object.
	k := ambiguityKB(t)
	k.InternFact("visited", "Mandel", "Person", "Freud", "Person", 0.8) // subject: goes
	k.InternFact("visited", "Freud", "Person", "Mandel", "Person", 0.8) // object: stays
	c := NewChecker(k)
	tpi := k.FactsTable()
	deleted := c.Apply(tpi)
	if deleted != 4 {
		t.Fatalf("deleted = %d, want 4 (3 born_in + 1 subject-position visited)", deleted)
	}
	// The object-position fact survives.
	mandel, _ := k.Entities.Lookup("Mandel")
	found := false
	for r := 0; r < tpi.NumRows(); r++ {
		if tpi.Int32Col(kb.TPiY)[r] == mandel {
			found = true
		}
		if tpi.Int32Col(kb.TPiX)[r] == mandel {
			t.Fatal("subject-position fact survived")
		}
	}
	if !found {
		t.Fatal("object-position fact was deleted")
	}
}

func TestApplyNoConstraints(t *testing.T) {
	k := kb.New()
	k.InternFact("r", "a", "A", "b", "B", 0.5)
	if got := NewChecker(k).Apply(k.FactsTable()); got != 0 {
		t.Fatalf("apply without constraints deleted %d", got)
	}
}

func TestAmbiguousEntitiesDedup(t *testing.T) {
	// An entity violating two different relations is reported once.
	k := ambiguityKB(t)
	k.InternFact("grew_up_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.InternFact("grew_up_in", "Mandel", "Person", "Paris", "City", 0.9)
	grewUp, _ := k.RelDict.Lookup("grew_up_in")
	if err := k.AddConstraint(kb.Constraint{Rel: grewUp, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	amb := NewChecker(k).AmbiguousEntities(k.FactsTable())
	if len(amb) != 1 {
		t.Fatalf("ambiguous = %+v, want 1 distinct entity", amb)
	}
}

func TestCheckerAsGroundingHook(t *testing.T) {
	// Reconstructs the Figure 5(a) scenario: the ambiguous "Mandel"
	// would produce located_in(Baltimore, Berlin)-style nonsense through
	// rule application; the hook removes the ambiguous entity so the
	// bogus inference never survives.
	k := kb.New()
	k.InternFact("born_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.InternFact("born_in", "Mandel", "Person", "Baltimore", "City", 0.9)
	k.InternFact("born_in", "Freud", "Person", "Vienna", "City", 0.9)
	c, err := k.ParseRule("0.5 located_in(x:City, y:City) :- born_in(z:Person, x:City), born_in(z, y:City)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}

	// The paper runs Query 3 once before inference starts (Section
	// 6.1.1), then re-applies it each iteration: pre-cleaning removes the
	// ambiguous entity before any rule can join through it.
	checker := NewChecker(k)
	pre := k.Clone()
	tpi := pre.FactsTable()
	if deleted := checker.Apply(tpi); deleted != 2 {
		t.Fatalf("pre-clean deleted %d facts, want the 2 Mandel facts", deleted)
	}
	kept := make([]kb.Fact, 0, tpi.NumRows())
	for r := 0; r < tpi.NumRows(); r++ {
		kept = append(kept, kb.FactAtRow(tpi, r))
	}
	pre.ReplaceFacts(kept)
	res, err := ground.Ground(pre, ground.Options{ConstraintHook: checker.Hook(), MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	locatedIn, _ := k.RelDict.Lookup("located_in")
	rels := res.Facts.Int32Col(kb.TPiR)
	for r := 0; r < res.Facts.NumRows(); r++ {
		if rels[r] == locatedIn {
			// located_in(x, x) from Freud alone is fine (born_in Vienna
			// twice is one fact; the self-join yields located_in(Vienna,
			// Vienna)). Anything involving Berlin/Baltimore is the bug.
			x := res.Facts.Int32Col(kb.TPiX)[r]
			y := res.Facts.Int32Col(kb.TPiY)[r]
			vienna, _ := k.Entities.Lookup("Vienna")
			if x != vienna || y != vienna {
				t.Fatalf("ambiguous-entity inference survived: %s", k.FactString(kb.FactAtRow(res.Facts, r)))
			}
		}
	}
	// Without the hook, the bogus fact appears.
	res2, err := ground.Ground(k, ground.Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	rels2 := res2.Facts.Int32Col(kb.TPiR)
	for r := 0; r < res2.Facts.NumRows(); r++ {
		if rels2[r] == locatedIn {
			x := res2.Facts.Int32Col(kb.TPiX)[r]
			berlin, _ := k.Entities.Lookup("Berlin")
			baltimore, _ := k.Entities.Lookup("Baltimore")
			if x == berlin || x == baltimore {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("control run should contain the ambiguous-entity inference")
	}
}

func TestMPPCheckerAgreesWithSingleNode(t *testing.T) {
	// On the ambiguity KB plus a Type II constraint, the distributed
	// violations must equal the single-node ones, under several segment
	// counts.
	k := ambiguityKB(t)
	k.InternFact("capital_of", "Delhi", "City", "India", "Country", 0.9)
	k.InternFact("capital_of", "Calcutta", "City", "India", "Country", 0.9)
	capitalOf, _ := k.RelDict.Lookup("capital_of")
	if err := k.AddConstraint(kb.Constraint{Rel: capitalOf, Type: kb.TypeII, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	tpi := k.FactsTable()
	want := NewChecker(k).Violations(tpi)

	for _, segs := range []int{1, 2, 5} {
		cluster := mpp.NewCluster(segs)
		dT := cluster.Distribute(tpi, []int{kb.TPiI})
		got, err := NewMPPChecker(k, cluster).Violations(dT)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("segs=%d: %d violations, want %d", segs, len(got), len(want))
		}
		wantSet := make(map[Violation]bool, len(want))
		for _, v := range want {
			wantSet[v] = true
		}
		for _, v := range got {
			if !wantSet[v] {
				t.Fatalf("segs=%d: unexpected violation %+v", segs, v)
			}
		}
	}
}

func TestScoreRules(t *testing.T) {
	k := kb.New()
	// r1 implies r2 and the data supports it: both (a,b) and (c,d) have
	// head facts.
	k.InternFact("r1", "a", "A", "b", "B", 0.9)
	k.InternFact("r2", "a", "A", "b", "B", 0.9)
	k.InternFact("r1", "c", "A", "d", "B", 0.9)
	k.InternFact("r2", "c", "A", "d", "B", 0.9)
	// r3 never has head support.
	k.InternFact("r3", "e", "A", "f", "B", 0.9)
	good, err := k.ParseRule("1.0 r2(x:A, y:B) :- r1(x:A, y:B)")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := k.ParseRule("1.0 r4(x:A, y:B) :- r3(x:A, y:B)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(good); err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(bad); err != nil {
		t.Fatal(err)
	}
	scores := ScoreRules(k)
	if len(scores) != 2 {
		t.Fatalf("scores = %+v", scores)
	}
	if scores[0].Matches != 2 || scores[0].Hits != 2 {
		t.Fatalf("good rule stats = %+v", scores[0])
	}
	if scores[1].Matches != 1 || scores[1].Hits != 0 {
		t.Fatalf("bad rule stats = %+v", scores[1])
	}
	if scores[0].Score <= scores[1].Score {
		t.Fatalf("supported rule should outscore unsupported: %v vs %v",
			scores[0].Score, scores[1].Score)
	}
}

func TestScoreRulesLength2(t *testing.T) {
	k := kb.New()
	k.InternFact("q", "z1", "C", "a", "A", 0.9)
	k.InternFact("r", "z1", "C", "b", "B", 0.9)
	k.InternFact("p", "a", "A", "b", "B", 0.9) // head support
	k.InternFact("q", "z2", "C", "c", "A", 0.9)
	k.InternFact("r", "z2", "C", "d", "B", 0.9) // body match, no head
	rule, err := k.ParseRule("1.0 p(x:A, y:B) :- q(z:C, x:A), r(z, y:B)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	scores := ScoreRules(k)
	if scores[0].Matches != 2 || scores[0].Hits != 1 {
		t.Fatalf("stats = %+v", scores[0])
	}
}

func TestCleanRules(t *testing.T) {
	k := kb.New()
	k.InternFact("r1", "a", "A", "b", "B", 0.9)
	k.InternFact("r2", "a", "A", "b", "B", 0.9)
	k.InternFact("r3", "e", "A", "f", "B", 0.9)
	lines := []string{
		"1.0 r2(x:A, y:B) :- r1(x:A, y:B)", // supported
		"1.0 r4(x:A, y:B) :- r3(x:A, y:B)", // unsupported
	}
	for _, l := range lines {
		c, err := k.ParseRule(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	cleaned := CleanRules(k, 0.5)
	if len(cleaned.Rules) != 1 {
		t.Fatalf("cleaned rules = %d, want 1", len(cleaned.Rules))
	}
	if cleaned.Rules[0].Head != k.Rules[0].Head {
		t.Fatal("cleaning kept the wrong rule")
	}
	// θ = 1 keeps everything, and returns a copy.
	all := CleanRules(k, 1)
	if len(all.Rules) != 2 {
		t.Fatal("θ=1 should keep all rules")
	}
	all.Rules = all.Rules[:0]
	if len(k.Rules) != 2 {
		t.Fatal("CleanRules(θ=1) aliases the original")
	}
	// θ tiny still keeps at least one rule.
	one := CleanRules(k, 0.0001)
	if len(one.Rules) != 1 {
		t.Fatalf("tiny θ kept %d rules", len(one.Rules))
	}
}

func TestErrorBreakdown(t *testing.T) {
	var b Breakdown
	b[SrcAmbiguousEntity] = 34
	b[SrcAmbiguousJoinKey] = 24
	b[SrcIncorrectRule] = 33
	b[SrcIncorrectExtraction] = 6
	b[SrcGeneralType] = 2
	b[SrcSynonym] = 1
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	if f := b.Fraction(SrcAmbiguousEntity); f != 0.34 {
		t.Fatalf("fraction = %v", f)
	}
	s := b.String()
	if !strings.Contains(s, "Ambiguities (detected)") || !strings.Contains(s, "34.0%") {
		t.Fatalf("breakdown string:\n%s", s)
	}
	var empty Breakdown
	if empty.Fraction(SrcSynonym) != 0 {
		t.Fatal("empty breakdown fraction should be 0")
	}
	if ErrorSource(99).String() == "" {
		t.Fatal("unknown source should still render")
	}
}

func TestViolationsOnGroundedFacts(t *testing.T) {
	// Constraints also catch *inferred* violations (E4 propagated
	// errors): a rule that fabricates a second birthplace.
	k := kb.New()
	k.InternFact("born_in", "P", "Person", "CityA", "City", 0.9)
	k.InternFact("moved_to", "P", "Person", "CityB", "City", 0.9)
	c, err := k.ParseRule("0.5 born_in(x:Person, y:City) :- moved_to(x:Person, y:City)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := ground.Ground(k, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viol := NewChecker(k).Violations(res.Facts)
	if len(viol) != 1 {
		t.Fatalf("violations on grounded facts = %+v", viol)
	}
}

func TestViolationsIgnoreOtherRelations(t *testing.T) {
	k := kb.New()
	// Unconstrained relation with many partners: no violation.
	k.InternFact("likes", "A", "Person", "X", "Thing", 0.9)
	k.InternFact("likes", "A", "Person", "Y", "Thing", 0.9)
	k.InternFact("likes", "A", "Person", "Z", "Thing", 0.9)
	k.InternFact("born_in", "A", "Person", "X", "City", 0.9)
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	if viol := NewChecker(k).Violations(k.FactsTable()); len(viol) != 0 {
		t.Fatalf("violations = %+v, want none", viol)
	}
}

var _ = engine.NullInt32 // keep engine import for test helpers above
