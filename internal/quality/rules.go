package quality

import (
	"sort"

	"probkb/internal/kb"
	"probkb/internal/mln"
)

// RuleScore is the statistical significance of one rule (Section 5.3):
// the smoothed conditional probability that the head holds given that the
// body holds, estimated from the observed facts. Sherlock scores its
// learned clauses the same way; ProbKB cleans rules by keeping the top-θ
// fraction.
//
// The smoothing is Hits / (Matches + 2): a rule with no body support
// scores zero (no evidence is not good evidence), and small-sample flukes
// are damped rather than rewarded.
type RuleScore struct {
	Index   int     // position in KB.Rules
	Matches int     // body groundings found in Π
	Hits    int     // of those, with the head also in Π
	Score   float64 // Hits / (Matches + 2)
}

// ScoreRules estimates every rule's statistical significance against the
// KB's observed facts.
func ScoreRules(k *kb.KB) []RuleScore {
	// Index the facts two ways: by (rel, c1, c2) for body enumeration and
	// as a key set for head checks.
	type sig struct{ rel, c1, c2 int32 }
	type pair struct{ x, y int32 }
	bySig := make(map[sig][]pair)
	for _, f := range k.Facts {
		s := sig{f.Rel, f.XClass, f.YClass}
		bySig[s] = append(bySig[s], pair{f.X, f.Y})
	}

	scores := make([]RuleScore, len(k.Rules))
	for i := range k.Rules {
		c := &k.Rules[i]
		rs := RuleScore{Index: i}

		headOf := func(val map[mln.Var]int32) kb.Key {
			return kb.Key{
				Rel: c.Head.Rel,
				X:   val[mln.X], XClass: c.Class[mln.X],
				Y: val[mln.Y], YClass: c.Class[mln.Y],
			}
		}

		b0 := c.Body[0]
		s0 := sig{b0.Rel, c.Class[b0.Arg1], c.Class[b0.Arg2]}
		if len(c.Body) == 1 {
			for _, p := range bySig[s0] {
				val := map[mln.Var]int32{b0.Arg1: p.x, b0.Arg2: p.y}
				rs.Matches++
				if k.HasFact(headOf(val)) {
					rs.Hits++
				}
			}
		} else {
			b1 := c.Body[1]
			s1 := sig{b1.Rel, c.Class[b1.Arg1], c.Class[b1.Arg2]}
			// Hash the second atom's facts by their z value.
			zOf := func(a mln.Atom, p pair) int32 {
				if a.Arg1 == mln.Z {
					return p.x
				}
				return p.y
			}
			byZ := make(map[int32][]pair)
			for _, p := range bySig[s1] {
				byZ[zOf(b1, p)] = append(byZ[zOf(b1, p)], p)
			}
			for _, p0 := range bySig[s0] {
				z := zOf(b0, p0)
				for _, p1 := range byZ[z] {
					val := map[mln.Var]int32{
						b0.Arg1: p0.x, b0.Arg2: p0.y,
						b1.Arg1: p1.x, b1.Arg2: p1.y,
					}
					rs.Matches++
					if k.HasFact(headOf(val)) {
						rs.Hits++
					}
				}
			}
		}
		rs.Score = float64(rs.Hits) / float64(rs.Matches+2)
		scores[i] = rs
	}
	return scores
}

// CleanRules returns a copy of the KB keeping only the top-θ fraction of
// rules by statistical significance (θ ∈ (0, 1]; θ = 1 keeps everything).
// Ties break toward the original rule order, keeping runs deterministic.
func CleanRules(k *kb.KB, theta float64) *kb.KB {
	if theta >= 1 {
		return k.Clone()
	}
	scores := ScoreRules(k)
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]].Score > scores[order[b]].Score
	})
	keep := int(float64(len(scores))*theta + 0.5)
	if keep < 1 && len(scores) > 0 {
		keep = 1
	}
	keepSet := make(map[int]bool, keep)
	for _, i := range order[:keep] {
		keepSet[i] = true
	}
	out := k.Clone()
	out.Rules = out.Rules[:0]
	for i, r := range k.Rules {
		if keepSet[i] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}
