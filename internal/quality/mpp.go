package quality

import (
	"fmt"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mpp"
)

// MPPChecker runs the functional-constraint check as a distributed plan
// (Section 5.4: constraints are applied in batches like the MLN rules;
// on Greenplum that means a distributed grouped join). The constraints
// table is small and replicated; the facts probe is redistributed by the
// grouped entity column so each segment can evaluate its groups locally.
type MPPChecker struct {
	cluster *mpp.Cluster
	fc      *mpp.DistTable
}

// NewMPPChecker replicates the KB's constraint table across the cluster.
func NewMPPChecker(k *kb.KB, cluster *mpp.Cluster) *MPPChecker {
	return &MPPChecker{cluster: cluster, fc: cluster.Replicate(k.ConstraintsTable())}
}

// Violations computes every violating entity over a distributed facts
// table, one grouped join per functionality type. Plan failures (a
// broken cluster, a cancelled context) come back as errors, never
// panics.
func (c *MPPChecker) Violations(dT *mpp.DistTable) ([]Violation, error) {
	var out []Violation
	for _, typ := range []int{kb.TypeI, kb.TypeII} {
		viol, err := c.violationsOfType(dT, typ)
		if err != nil {
			return nil, err
		}
		out = append(out, viol...)
	}
	return out, nil
}

func (c *MPPChecker) violationsOfType(dT *mpp.DistTable, typ int) ([]Violation, error) {
	fcFiltered := mpp.NewFilter(mpp.NewScan(c.fc),
		fmt.Sprintf("FC.arg = %d", typ),
		func(t *engine.Table, r int) bool {
			return t.Int32Col(kb.TOmegaType)[r] == int32(typ)
		})

	entCol, entClsCol, otherCol, otherClsCol := kb.TPiX, kb.TPiC1, kb.TPiY, kb.TPiC2
	if typ == kb.TypeII {
		entCol, entClsCol, otherCol, otherClsCol = kb.TPiY, kb.TPiC2, kb.TPiX, kb.TPiC1
	}

	// Build (small, replicated) = FC; probe = the distributed facts. The
	// join needs no collocation work because the build side is
	// replicated.
	join := mpp.NewHashJoin(fcFiltered, mpp.NewScan(dT),
		[]int{kb.TOmegaR}, []int{kb.TPiR},
		[]engine.JoinOut{
			engine.ProbeCol("R", kb.TPiR),
			engine.ProbeCol("ent", entCol),
			engine.ProbeCol("entCls", entClsCol),
			engine.ProbeCol("otherCls", otherClsCol),
			engine.ProbeCol("other", otherCol),
			engine.BuildCol("deg", kb.TOmegaDeg),
		},
		"T.R = FC.R")

	// Groups must be collocated: redistribute by the full group key
	// before the segment-local aggregation.
	groupKeys := []int{0, 1, 2, 3}
	placed := mpp.EnsureDistributedBy(join, groupKeys)
	grouped := mpp.NewGroupBy(placed, groupKeys, []engine.AggSpec{
		{Kind: engine.AggCountDistinct, Col: 4, Name: "n"},
		{Kind: engine.AggMinF64, Col: 5, Name: "deg"},
	})
	having := mpp.NewFilter(grouped, "count(distinct) > min(deg)",
		func(t *engine.Table, r int) bool {
			return float64(t.Int32Col(4)[r]) > t.Float64Col(5)[r]
		})

	dres, err := having.Run()
	if err != nil {
		return nil, fmt.Errorf("quality: distributed constraint query failed: %w", err)
	}
	res := mpp.Gather(dres)

	out := make([]Violation, 0, res.NumRows())
	for r := 0; r < res.NumRows(); r++ {
		out = append(out, Violation{
			Rel:    res.Int32Col(0)[r],
			Entity: res.Int32Col(1)[r],
			Class:  res.Int32Col(2)[r],
			Type:   typ,
			Count:  int(res.Int32Col(4)[r]),
			Degree: int(res.Float64Col(5)[r]),
		})
	}
	return out, nil
}
