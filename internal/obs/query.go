package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Active-query registry: every SQL / explain / expand request a server
// handles registers here for its lifetime, so an operator can list what
// is running right now (GET /debug/queries) and cancel a runaway
// request (DELETE /debug/queries/{id}) without restarting the process.
// Cancellation rides the request context — the same plumbing client
// disconnects use — so a canceled query unwinds through the engine's
// operator-boundary checks and surfaces as a PartialError.

// ActiveQuery is one in-flight request. The query ID is also attached
// to the request's root span and journal events, so traces, logs, and
// the registry cross-reference.
type ActiveQuery struct {
	id    string
	kind  string // "sql", "dist-sql", "explain", "expand"
	text  string
	start time.Time

	phase  atomic.Value // string: coarse progress ("plan", "run", "ground", ...)
	rows   atomic.Int64 // rows produced so far (operator materializations)
	cancel context.CancelFunc
}

// ID returns the registry-assigned query identifier ("q1", "q2", ...).
func (q *ActiveQuery) ID() string { return q.id }

// Kind returns the request kind the query registered as.
func (q *ActiveQuery) Kind() string { return q.kind }

// Text returns the query text (or a request description for expand).
func (q *ActiveQuery) Text() string { return q.text }

// Start returns when the query began.
func (q *ActiveQuery) Start() time.Time { return q.start }

// SetPhase records coarse progress; safe from any goroutine. Only
// actual transitions reach the flight recorder — callers invoke this
// per iteration/sweep, and a recorder full of repeats would evict the
// history an incident wants.
func (q *ActiveQuery) SetPhase(p string) {
	if q == nil {
		return
	}
	if old := q.phase.Swap(p); old != p {
		DefaultFlight.Record(FlightEvent{Kind: "query", Name: "phase " + p, QueryID: q.id})
	}
}

// Phase returns the last recorded phase.
func (q *ActiveQuery) Phase() string {
	if q == nil {
		return ""
	}
	if p, ok := q.phase.Load().(string); ok {
		return p
	}
	return ""
}

// AddRows accumulates rows produced; engine.Opts.OnRows feeds it.
func (q *ActiveQuery) AddRows(n int) {
	if q != nil {
		q.rows.Add(int64(n))
	}
}

// Rows returns the rows produced so far.
func (q *ActiveQuery) Rows() int64 {
	if q == nil {
		return 0
	}
	return q.rows.Load()
}

// QueryInfo is the listing view of one in-flight query.
type QueryInfo struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Text    string        `json:"query"`
	Phase   string        `json:"phase"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Rows    int64         `json:"rows"`
}

// QueryRegistry tracks in-flight queries. The zero value is ready; a
// nil registry is a no-op (Begin returns the context unchanged).
type QueryRegistry struct {
	mu     sync.Mutex
	seq    int64
	active map[string]*ActiveQuery
}

// Queries is the process-wide registry the server uses.
var Queries = &QueryRegistry{}

func init() {
	Default.Help("probkb_queries_in_flight", "Queries currently registered as in-flight (SQL, explain, expand).")
	Default.Help("probkb_slow_queries_total", "Queries that crossed the slow-query threshold.")
}

type queryCtxKey struct{}

// Begin registers an in-flight query and returns a derived, cancelable
// context carrying it (retrieve with QueryFrom). The caller must call
// Finish when the request ends, whatever the outcome.
func (r *QueryRegistry) Begin(ctx context.Context, kind, text string) (context.Context, *ActiveQuery) {
	if r == nil {
		return ctx, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	q := &ActiveQuery{kind: kind, text: text, start: time.Now(), cancel: cancel}
	q.phase.Store("start")
	r.mu.Lock()
	r.seq++
	q.id = "q" + strconv.FormatInt(r.seq, 10)
	if r.active == nil {
		r.active = make(map[string]*ActiveQuery)
	}
	r.active[q.id] = q
	n := len(r.active)
	r.mu.Unlock()
	Default.Gauge("probkb_queries_in_flight").Set(float64(n))
	DefaultFlight.Record(FlightEvent{Kind: "query", Name: "begin " + kind, Detail: text, QueryID: q.id})
	if sp := SpanFrom(ctx); sp != nil {
		sp.SetAttr("query_id", q.id)
	}
	return context.WithValue(ctx, queryCtxKey{}, q), q
}

// Finish deregisters a query and releases its context resources.
func (r *QueryRegistry) Finish(q *ActiveQuery) {
	if r == nil || q == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, q.id)
	n := len(r.active)
	r.mu.Unlock()
	q.cancel()
	Default.Gauge("probkb_queries_in_flight").Set(float64(n))
	DefaultFlight.Record(FlightEvent{
		Kind: "query", Name: "finish " + q.kind, QueryID: q.id, Dur: time.Since(q.start),
	})
}

// Cancel cancels the in-flight query with the given ID; it reports
// whether the ID was found. The query stays listed until its handler
// unwinds and calls Finish.
func (r *QueryRegistry) Cancel(id string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	q, ok := r.active[id]
	r.mu.Unlock()
	if ok {
		q.cancel()
	}
	return ok
}

// List returns the in-flight queries ordered by start (oldest first).
func (r *QueryRegistry) List() []QueryInfo {
	return r.Snapshot(time.Now())
}

// Snapshot is List with elapsed times computed against an explicit
// clock, so watchdog detectors (and their tests) can evaluate "how
// long has this query been running" deterministically.
func (r *QueryRegistry) Snapshot(now time.Time) []QueryInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	qs := make([]*ActiveQuery, 0, len(r.active))
	for _, q := range r.active {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].start.Equal(qs[j].start) {
			return qs[i].id < qs[j].id
		}
		return qs[i].start.Before(qs[j].start)
	})
	out := make([]QueryInfo, len(qs))
	for i, q := range qs {
		out[i] = QueryInfo{
			ID: q.id, Kind: q.kind, Text: q.text,
			Phase: q.Phase(), Elapsed: now.Sub(q.start), Rows: q.Rows(),
		}
	}
	return out
}

// QueryFrom returns the active query riding the context, or nil.
func QueryFrom(ctx context.Context) *ActiveQuery {
	if ctx == nil {
		return nil
	}
	q, _ := ctx.Value(queryCtxKey{}).(*ActiveQuery)
	return q
}
