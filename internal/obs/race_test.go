package obs

import (
	"context"
	"io"
	"sync"
	"testing"
)

// TestConcurrentRegistryAndSpans exercises counters, gauges, histograms,
// span starts, and exposition rendering from many goroutines at once; it
// exists to fail under -race if any path loses its synchronization.
func TestConcurrentRegistryAndSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(16)
	const workers, iters = 8, 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, root := StartSpanIn(context.Background(), tr, "worker")
			for i := 0; i < iters; i++ {
				r.Counter("race_ops_total", L("worker", "w")).Inc()
				r.Gauge("race_depth").Add(1)
				r.Histogram("race_seconds", nil).Observe(float64(i) * 1e-6)
				_, child := StartSpanIn(ctx, tr, "op")
				child.SetAttr("i", i)
				child.End()
			}
			root.End()
		}(w)
	}
	// Render concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(io.Discard)
			for _, s := range tr.Traces() {
				_ = s.Render()
			}
		}
	}()
	wg.Wait()

	if got := r.Counter("race_ops_total", L("worker", "w")).Value(); got != workers*iters {
		t.Fatalf("lost increments: %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("race_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("lost observations: %d, want %d", got, workers*iters)
	}
}
