package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testIncidentStore builds a store over private sources so tests never
// race with other packages using the process-wide defaults.
func testIncidentStore(max int) (*IncidentStore, *FlightRecorder, *QueryRegistry) {
	flight := NewFlightRecorder(64)
	flight.setClock(fakeClock())
	queries := &QueryRegistry{}
	s := NewIncidentStore(max)
	s.Flight = flight
	s.Queries = queries
	s.Registry = NewRegistry()
	s.setClock(fakeClock())
	return s, flight, queries
}

type captureEmitter struct {
	types    []string
	payloads []any
}

func (c *captureEmitter) Emit(typ string, payload any) {
	c.types = append(c.types, typ)
	c.payloads = append(c.payloads, payload)
}

func TestIncidentOpenCapturesContext(t *testing.T) {
	s, flight, queries := testIncidentStore(8)
	jr := &captureEmitter{}
	s.SetJournal(jr)
	s.SetPlanner(func(kind, text string) string {
		return "-> Scan " + text + " [" + kind + "]"
	})

	flight.Note("span", "ground", "")
	flight.Note("journal", "iteration", "")
	_, q := queries.Begin(context.Background(), "sql", "SELECT T.R FROM T")
	defer queries.Finish(q)
	s.Registry.Counter("probkb_test_total").Inc()

	inc := s.Open(Finding{
		Detector: "stuck_query", Summary: "query q1 stuck",
		QueryID: q.ID(), QueryKind: "sql", QueryText: "SELECT T.R FROM T",
	})
	if inc.ID != "i1" || inc.Detector != "stuck_query" {
		t.Fatalf("incident header: %+v", inc)
	}
	if len(inc.Flight) == 0 || !strings.Contains(inc.Timeline, "ground") {
		t.Fatalf("flight slice not captured: %d events, timeline %q", len(inc.Flight), inc.Timeline)
	}
	if len(inc.Queries) != 1 || inc.Queries[0].ID != q.ID() {
		t.Fatalf("active queries not captured: %+v", inc.Queries)
	}
	if inc.Metrics["probkb_test_total"] != 1 {
		t.Fatalf("metrics snapshot missing: %v", inc.Metrics["probkb_test_total"])
	}
	if !strings.Contains(inc.Goroutines, "goroutine") {
		t.Fatal("goroutine dump missing")
	}
	if !strings.Contains(inc.Plan, "SELECT T.R FROM T") || !strings.Contains(inc.Plan, "[sql]") {
		t.Fatalf("planner not invoked: %q", inc.Plan)
	}
	if len(jr.types) != 1 || jr.types[0] != "incident" {
		t.Fatalf("journal emissions: %v", jr.types)
	}
	data, _ := json.Marshal(jr.payloads[0])
	for _, want := range []string{`"id":"i1"`, `"detector":"stuck_query"`, `"flight_events":`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("journal payload missing %s: %s", want, data)
		}
	}
}

func TestIncidentStoreBoundAndOrder(t *testing.T) {
	s, _, _ := testIncidentStore(3)
	for i := 0; i < 5; i++ {
		s.Open(Finding{Detector: "goroutine_leak", Summary: "n"})
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("retained %d incidents, want 3", len(list))
	}
	// Newest first: i5, i4, i3.
	for i, want := range []string{"i5", "i4", "i3"} {
		if list[i].ID != want {
			t.Errorf("list[%d] = %s, want %s", i, list[i].ID, want)
		}
	}
	if s.Get("i1") != nil {
		t.Error("evicted incident still retrievable")
	}
	if got := s.Get("i4"); got == nil || got.ID != "i4" {
		t.Errorf("Get(i4) = %v", got)
	}
	if s.Get("nope") != nil {
		t.Error("unknown id returned an incident")
	}
}

func TestIncidentNilStore(t *testing.T) {
	var s *IncidentStore
	if s.Open(Finding{}) != nil || s.List() != nil || s.Get("i1") != nil {
		t.Fatal("nil store misbehaves")
	}
	s.SetJournal(nil)
	s.SetPlanner(nil)
	s.Reset()
}

func TestWriteCrashDump(t *testing.T) {
	s, flight, _ := testIncidentStore(4)
	flight.Note("log", "INFO", "before the crash")
	s.Open(Finding{Detector: "wal_growth", Summary: "wal runaway"})

	dir := filepath.Join(t.TempDir(), "incidents")
	path, err := s.WriteCrashDump(dir, "SIGQUIT")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "SIGQUIT") {
		t.Fatalf("dump path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason    string `json:"reason"`
		Timeline  string `json:"timeline"`
		Incidents []struct {
			ID string `json:"id"`
		} `json:"incidents"`
		Goroutine string `json:"goroutines"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if dump.Reason != "SIGQUIT" {
		t.Errorf("reason %q", dump.Reason)
	}
	if !strings.Contains(dump.Timeline, "before the crash") {
		t.Error("dump timeline missing flight events")
	}
	if len(dump.Incidents) != 1 || dump.Incidents[0].ID != "i1" {
		t.Errorf("dump incidents: %+v", dump.Incidents)
	}
	if !strings.Contains(dump.Goroutine, "goroutine") {
		t.Error("dump goroutine stack missing")
	}
}

// TestRunnerOpensIncidents wires a Runner to an IncidentStore the way
// probkb-server does and drives a stuck query through: the detector
// fire must land as a captured incident.
func TestRunnerOpensIncidents(t *testing.T) {
	s, _, queries := testIncidentStore(8)
	r := NewRunner(time.Second)
	r.OnFire = func(f Finding) { s.Open(f) }
	r.Add(&StuckQueryDetector{Registry: queries, MaxElapsed: time.Minute}, Hysteresis{FireAfter: 2})

	_, q := queries.Begin(context.Background(), "expand", "POST /admin/expand")
	defer queries.Finish(q)
	stuck := q.Start().Add(2 * time.Minute)
	r.Tick(stuck)
	if len(s.List()) != 0 {
		t.Fatal("incident opened before hysteresis threshold")
	}
	r.Tick(stuck.Add(time.Second))
	list := s.List()
	if len(list) != 1 {
		t.Fatalf("incidents after second bad tick: %d", len(list))
	}
	inc := list[0]
	if inc.Detector != "stuck_query" || inc.QueryID != q.ID() {
		t.Fatalf("incident: %+v", inc)
	}
	if len(inc.Queries) == 0 || inc.Queries[0].Kind != "expand" {
		t.Fatalf("incident active queries: %+v", inc.Queries)
	}
}

func TestIncidentSummaryLine(t *testing.T) {
	inc := &Incident{ID: "i2", Time: t0, Detector: "retry_storm", Summary: "50 retries"}
	line := inc.SummaryLine(t0.Add(90 * time.Second))
	for _, want := range []string{"i2", "1m30s", "retry_storm", "50 retries"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %q", want, line)
		}
	}
}
