package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func slowQ(id string, elapsed time.Duration) SlowQuery {
	return SlowQuery{ID: id, Kind: "sql", Text: "SELECT 1", Elapsed: elapsed}
}

func TestSlowLogThresholdGate(t *testing.T) {
	l := NewSlowLog(4)
	ctx := context.Background()

	// Threshold unset: everything drops.
	if l.Note(ctx, slowQ("q1", time.Hour)) {
		t.Error("disabled log retained a query")
	}
	l.SetThreshold(100 * time.Millisecond)
	if l.Note(ctx, slowQ("q2", 50*time.Millisecond)) {
		t.Error("fast query retained")
	}
	if !l.Note(ctx, slowQ("q3", 150*time.Millisecond)) {
		t.Error("slow query dropped")
	}
	got := l.List()
	if len(got) != 1 || got[0].ID != "q3" {
		t.Fatalf("List() = %+v, want just q3", got)
	}
	if got[0].Time.IsZero() {
		t.Error("retained record has no timestamp")
	}
}

func TestSlowLogRingEvictionOrder(t *testing.T) {
	l := NewSlowLog(3)
	l.SetThreshold(time.Millisecond)
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		l.Note(ctx, slowQ(fmt.Sprintf("q%d", i), time.Second))
	}
	got := l.List()
	if len(got) != 3 {
		t.Fatalf("List() has %d records, want ring size 3", len(got))
	}
	// Newest first; the two oldest (q1, q2) were evicted.
	for i, want := range []string{"q5", "q4", "q3"} {
		if got[i].ID != want {
			t.Fatalf("List()[%d] = %s, want %s (full: %+v)", i, got[i].ID, want, got)
		}
	}
}

func TestSlowLogThresholdChangeMidStream(t *testing.T) {
	l := NewSlowLog(8)
	ctx := context.Background()
	l.SetThreshold(time.Second)
	l.Note(ctx, slowQ("slow-only", 2*time.Second))
	l.Note(ctx, slowQ("dropped", 100*time.Millisecond))

	// Tightening the threshold catches the 100ms query from then on,
	// without disturbing what the old threshold retained.
	l.SetThreshold(50 * time.Millisecond)
	if got := l.Threshold(); got != 50*time.Millisecond {
		t.Fatalf("Threshold() = %v", got)
	}
	l.Note(ctx, slowQ("now-slow", 100*time.Millisecond))

	// Disabling drops everything again but keeps history readable.
	l.SetThreshold(0)
	l.Note(ctx, slowQ("after-off", time.Hour))
	got := l.List()
	if len(got) != 2 || got[0].ID != "now-slow" || got[1].ID != "slow-only" {
		t.Fatalf("List() = %+v, want [now-slow slow-only]", got)
	}
}

func TestSlowLogNilReceiver(t *testing.T) {
	var l *SlowLog
	if l.Note(context.Background(), slowQ("q", time.Hour)) {
		t.Error("nil log retained a query")
	}
	if l.List() != nil {
		t.Error("nil log listed queries")
	}
	if l.Threshold() != 0 {
		t.Error("nil log has a threshold")
	}
	l.SetThreshold(time.Second) // must not panic
}

// TestSlowLogConcurrent exercises Note/List/SetThreshold races under
// -race: the ring must neither tear nor deadlock.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16)
	l.SetThreshold(time.Millisecond)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Note(ctx, slowQ(fmt.Sprintf("g%d-%d", g, i), time.Second))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.List()
			l.SetThreshold(time.Duration(1+i%3) * time.Millisecond)
		}
	}()
	wg.Wait()
	got := l.List()
	if len(got) != 16 {
		t.Fatalf("List() has %d records after saturation, want 16", len(got))
	}
	for _, q := range got {
		if q.ID == "" || q.Time.IsZero() {
			t.Fatalf("torn record in ring: %+v", q)
		}
	}
}
