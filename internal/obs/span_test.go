package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := StartSpanIn(context.Background(), tr, "expand")
	cctx, ground := StartSpanIn(ctx, tr, "ground")
	_, iter1 := StartSpanIn(cctx, tr, "iteration")
	iter1.SetAttr("iter", 1)
	iter1.End()
	_, iter2 := StartSpanIn(cctx, tr, "iteration")
	iter2.SetAttr("iter", 2)
	iter2.End()
	ground.End()
	_, inf := StartSpanIn(ctx, tr, "infer")
	inf.End()
	root.End()

	if root.TraceID() != ground.TraceID() || root.TraceID() != iter1.TraceID() {
		t.Error("children do not share the root's trace id")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0] != ground || kids[1] != inf {
		t.Fatalf("root children = %v, want [ground, infer] in start order", kids)
	}
	gkids := ground.Children()
	if len(gkids) != 2 || gkids[0] != iter1 || gkids[1] != iter2 {
		t.Fatalf("ground children out of order")
	}
	if tr.Last() != root {
		t.Error("root span not published to tracer on End")
	}
	// Only roots enter the ring.
	if n := len(tr.Traces()); n != 1 {
		t.Errorf("ring holds %d traces, want 1", n)
	}
}

func TestSpanRender(t *testing.T) {
	tr := NewTracer(1)
	ctx, root := StartSpanIn(context.Background(), tr, "expand")
	root.SetAttr("engine", "ProbKB")
	_, child := StartSpanIn(ctx, tr, "ground")
	time.Sleep(time.Millisecond)
	child.SetAttr("facts", 42)
	child.End()
	root.End()

	out := root.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render = %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "-> expand ") || !strings.Contains(lines[0], "engine=ProbKB") {
		t.Errorf("bad root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  -> ground ") || !strings.Contains(lines[1], "facts=42") {
		t.Errorf("bad child line %q", lines[1])
	}
	if !strings.Contains(lines[0], "self=") || !strings.Contains(lines[0], "time=") {
		t.Errorf("missing time/self annotations in %q", lines[0])
	}
}

func TestSelfTimeExcludesChildren(t *testing.T) {
	tr := NewTracer(1)
	ctx, root := StartSpanIn(context.Background(), tr, "root")
	_, child := StartSpanIn(ctx, tr, "child")
	time.Sleep(5 * time.Millisecond)
	child.End()
	root.End()

	if root.Duration() < child.Duration() {
		t.Error("root shorter than its child")
	}
	if self := root.SelfTime(); self >= root.Duration() {
		t.Errorf("self time %v not reduced by child %v", self, child.Duration())
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(3)
	var last *Span
	for i := 0; i < 10; i++ {
		_, s := StartSpanIn(context.Background(), tr, "run")
		s.SetAttr("i", i)
		s.End()
		last = s
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	if traces[0] != last {
		t.Error("most recent trace is not first")
	}
}

func TestEndTwiceKeepsFirst(t *testing.T) {
	tr := NewTracer(2)
	_, s := StartSpanIn(context.Background(), tr, "once")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Error("second End moved the end time")
	}
	if len(tr.Traces()) != 1 {
		t.Error("double End published the span twice")
	}
}

func TestSpanFromContext(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Error("empty context has a span")
	}
	ctx, s := StartSpanIn(context.Background(), NewTracer(1), "x")
	if SpanFrom(ctx) != s {
		t.Error("SpanFrom did not return the started span")
	}
	s.End()
}
