package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("test_requests_total", "requests served")
	r.Counter("test_requests_total", L("path", "/facts")).Add(3)
	r.Counter("test_requests_total", L("path", "/stats")).Inc()
	r.Gauge("test_in_flight").Set(2)
	r.Gauge("test_temperature").Set(36.6)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests served\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{path="/facts"} 3` + "\n",
		`test_requests_total{path="/stats"} 1` + "\n",
		"# TYPE test_in_flight gauge\n",
		"test_in_flight 2\n",
		"test_temperature 36.6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`test_latency_seconds_bucket{le="1"} 3` + "\n",
		`test_latency_seconds_bucket{le="10"} 4` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_latency_seconds_sum 56.05\n",
		"test_latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaping: missing %q in:\n%s", want, b.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_c_total").Add(7)
	r.Gauge("test_g", L("k", "v")).Set(1.5)
	r.Histogram("test_h", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap["test_c_total"] != 7 {
		t.Errorf("counter snapshot = %v, want 7", snap["test_c_total"])
	}
	if snap[`test_g{k="v"}`] != 1.5 {
		t.Errorf("gauge snapshot = %v, want 1.5", snap[`test_g{k="v"}`])
	}
	if snap["test_h_count"] != 1 || snap["test_h_sum"] != 0.5 {
		t.Errorf("histogram snapshot = count %v sum %v, want 1 / 0.5",
			snap["test_h_count"], snap["test_h_sum"])
	}
}

func TestSameSeriesIsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same_total", L("x", "1"), L("y", "2"))
	b := r.Counter("test_same_total", L("y", "2"), L("x", "1")) // label order is irrelevant
	a.Inc()
	b.Inc()
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	if a.Value() != 2 {
		t.Fatalf("value = %d, want 2", a.Value())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_mono_total")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter went backwards: %d", c.Value())
	}
}
