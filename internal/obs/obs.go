// Package obs is the stdlib-only observability layer of the probkb
// pipeline: a concurrency-safe metrics registry rendered in Prometheus
// text exposition format (registry.go), a span tracer whose text
// renderer generalizes the engine's EXPLAIN ANALYZE style to the whole
// expansion pipeline (span.go), and shared structured logging carrying
// trace ids (log.go).
//
// The paper demonstrates its 237× grounding speedup with annotated
// Greenplum EXPLAIN plans (Figure 4) and per-stage timings (Section 8);
// this package makes the same evidence available continuously: every
// grounding iteration, motion, Gibbs sweep, and HTTP request records
// into the Default registry, and every Expand call leaves a span tree
// in the DefaultTracer ring. internal/server surfaces both at
// GET /metrics and GET /debug/traces.
//
// Conventions: metric names are probkb_<area>_<what>[_total]; durations
// are histograms in seconds over DurationBuckets; byte volumes use
// SizeBuckets.
package obs

import "time"

// Seconds converts a duration to the float seconds metrics record.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Since is shorthand for Seconds(time.Since(t)).
func Since(t time.Time) float64 { return time.Since(t).Seconds() }
