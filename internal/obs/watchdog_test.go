package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// All watchdog tests drive Runner.Tick with explicit clock values and
// synthetic sources — no sleeps, no tickers.

var t0 = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

// collectRunner returns a runner (never Started) whose firings append
// to the returned slice.
func collectRunner() (*Runner, *[]Finding) {
	var fired []Finding
	r := NewRunner(time.Second)
	r.OnFire = func(f Finding) { fired = append(fired, f) }
	return r, &fired
}

func TestStuckQueryDetector(t *testing.T) {
	reg := &QueryRegistry{}
	r, fired := collectRunner()
	r.Add(&StuckQueryDetector{Registry: reg, MaxElapsed: 30 * time.Second}, Hysteresis{})

	// Healthy: a fresh query, checked 1s later — quiet.
	ctx, q := reg.Begin(context.Background(), "sql", "SELECT T.R FROM T")
	_ = ctx
	r.Tick(t0.Add(time.Second))
	if len(*fired) != 0 {
		t.Fatalf("fired on a 1s-old query: %v", *fired)
	}

	// The same query viewed from 31s past its start: stuck.
	r.Tick(q.Start().Add(31 * time.Second))
	if len(*fired) != 1 {
		t.Fatalf("did not fire on a 31s query: %v", *fired)
	}
	f := (*fired)[0]
	if f.Detector != "stuck_query" || f.QueryID != q.ID() || f.QueryText != "SELECT T.R FROM T" {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.Summary, q.ID()) {
		t.Fatalf("summary %q does not name the query", f.Summary)
	}

	// Still stuck: no refire while the condition persists.
	r.Tick(q.Start().Add(60 * time.Second))
	if len(*fired) != 1 {
		t.Fatal("refired without clearing")
	}

	// Finished: condition clears, detector re-arms, a new stuck query
	// fires again.
	reg.Finish(q)
	r.Tick(t0.Add(2 * time.Minute))
	_, q2 := reg.Begin(context.Background(), "expand", "POST /admin/expand")
	defer reg.Finish(q2)
	r.Tick(q2.Start().Add(31 * time.Second))
	if len(*fired) != 2 {
		t.Fatalf("re-armed detector did not fire on a second stuck query: %v", *fired)
	}
}

func TestHysteresisFireAfterAndClearAfter(t *testing.T) {
	reg := &QueryRegistry{}
	r, fired := collectRunner()
	r.Add(&StuckQueryDetector{Registry: reg, MaxElapsed: 10 * time.Second}, Hysteresis{FireAfter: 3, ClearAfter: 2})

	_, q := reg.Begin(context.Background(), "sql", "SELECT 1")
	stuck := q.Start().Add(time.Minute)

	// Two bad ticks: below FireAfter, still quiet.
	r.Tick(stuck)
	r.Tick(stuck)
	if len(*fired) != 0 {
		t.Fatal("fired before FireAfter consecutive bad ticks")
	}
	// A good tick in between resets the streak.
	reg.Finish(q)
	r.Tick(t0)
	_, q2 := reg.Begin(context.Background(), "sql", "SELECT 2")
	stuck2 := q2.Start().Add(time.Minute)
	r.Tick(stuck2)
	r.Tick(stuck2)
	if len(*fired) != 0 {
		t.Fatal("bad streak survived a good tick")
	}
	// Third consecutive bad tick fires.
	r.Tick(stuck2)
	if len(*fired) != 1 {
		t.Fatal("did not fire after FireAfter consecutive bad ticks")
	}

	// One good tick is below ClearAfter: a following bad tick must NOT
	// re-fire (the detector has not re-armed).
	reg.Finish(q2)
	r.Tick(t0)
	_, q3 := reg.Begin(context.Background(), "sql", "SELECT 3")
	defer reg.Finish(q3)
	stuck3 := q3.Start().Add(time.Minute)
	r.Tick(stuck3)
	r.Tick(stuck3)
	r.Tick(stuck3)
	if len(*fired) != 1 {
		t.Fatalf("re-fired after only one good tick (ClearAfter=2): %v", *fired)
	}
}

func TestGoroutineLeakDetector(t *testing.T) {
	n := 10
	r, fired := collectRunner()
	r.Add(&GoroutineLeakDetector{Max: 100, Sample: func() int { return n }}, Hysteresis{})

	r.Tick(t0)
	if len(*fired) != 0 {
		t.Fatal("fired at a healthy count")
	}
	n = 101
	r.Tick(t0.Add(time.Second))
	if len(*fired) != 1 || (*fired)[0].Detector != "goroutine_leak" {
		t.Fatalf("fired = %v", *fired)
	}
}

func TestHeapGrowthDetector(t *testing.T) {
	heap := uint64(0)
	d := &HeapGrowthDetector{Window: 3, MinGrowth: 100, Sample: func() uint64 { return heap }}
	r, fired := collectRunner()
	r.Add(d, Hysteresis{})

	// Stable large heap: never fires.
	heap = 1 << 30
	for i := 0; i < 5; i++ {
		r.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	if len(*fired) != 0 {
		t.Fatal("fired on a stable heap")
	}
	// Monotone growth but below MinGrowth: quiet.
	for i := 0; i < 5; i++ {
		heap += 10
		r.Tick(t0)
	}
	if len(*fired) != 0 {
		t.Fatal("fired below MinGrowth")
	}
	// Monotone growth over the window above MinGrowth: fires.
	for i := 0; i < 3; i++ {
		heap += 200
		r.Tick(t0)
	}
	if len(*fired) != 1 || (*fired)[0].Detector != "heap_growth" {
		t.Fatalf("fired = %v", *fired)
	}
}

func TestGibbsDivergenceDetector(t *testing.T) {
	h := &ChainHealth{}
	r, fired := collectRunner()
	r.Add(&GibbsDivergenceDetector{Health: h, MaxRHat: 1.2}, Hysteresis{})

	// Healthy chain converging.
	h.ObserveSweep(100)
	h.ObserveRHat(1.05)
	r.Tick(t0)
	if len(*fired) != 0 {
		t.Fatal("fired on a converging chain")
	}
	// Diverging.
	h.ObserveRHat(2.5)
	r.Tick(t0.Add(time.Second))
	if len(*fired) != 1 || !strings.Contains((*fired)[0].Summary, "R-hat") {
		t.Fatalf("fired = %v", *fired)
	}
	// Finished chain with a stale bad R-hat: quiet (not active).
	h.Done()
	h2 := &ChainHealth{}
	r2, fired2 := collectRunner()
	r2.Add(&GibbsDivergenceDetector{Health: h2, MaxRHat: 1.2}, Hysteresis{})
	r2.Tick(t0)
	if len(*fired2) != 0 {
		t.Fatal("fired on an inactive chain")
	}
}

func TestGibbsStallDetector(t *testing.T) {
	h := &ChainHealth{}
	r, fired := collectRunner()
	r.Add(&GibbsStallDetector{Health: h}, Hysteresis{})

	// Progressing chain: sweep advances between ticks.
	h.ObserveSweep(10)
	r.Tick(t0)
	h.ObserveSweep(20)
	r.Tick(t0.Add(time.Second))
	h.ObserveSweep(30)
	r.Tick(t0.Add(2 * time.Second))
	if len(*fired) != 0 {
		t.Fatal("fired on a progressing chain")
	}
	// Sweep counter frozen across a tick: stall.
	r.Tick(t0.Add(3 * time.Second))
	if len(*fired) != 1 || (*fired)[0].Detector != "gibbs_stall" {
		t.Fatalf("fired = %v", *fired)
	}
	// Done: goes quiet even with the counter frozen.
	h.Done()
	r2, fired2 := collectRunner()
	d := &GibbsStallDetector{Health: h}
	r2.Add(d, Hysteresis{})
	r2.Tick(t0)
	r2.Tick(t0.Add(time.Second))
	if len(*fired2) != 0 {
		t.Fatal("fired on a finished chain")
	}
}

func TestWALGrowthDetector(t *testing.T) {
	records := int64(0)
	r, fired := collectRunner()
	r.Add(&WALGrowthDetector{Records: func() int64 { return records }, MaxRecords: 1000}, Hysteresis{})

	records = 500
	r.Tick(t0)
	if len(*fired) != 0 {
		t.Fatal("fired below the record limit")
	}
	records = 1500
	r.Tick(t0.Add(time.Second))
	if len(*fired) != 1 || (*fired)[0].Detector != "wal_growth" {
		t.Fatalf("fired = %v", *fired)
	}
	// A checkpoint zeroes the count; detector clears and re-arms.
	records = 0
	r.Tick(t0.Add(2 * time.Second))
	records = 2000
	r.Tick(t0.Add(3 * time.Second))
	if len(*fired) != 2 {
		t.Fatal("did not re-fire after a checkpoint reset")
	}
}

func TestRetryStormDetector(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("probkb_mpp_segment_retries_total")
	r, fired := collectRunner()
	r.Add(&RetryStormDetector{Registry: reg, MaxPerTick: 10}, Hysteresis{})

	// Priming tick: a pre-existing total is not a storm.
	ctr.Add(500)
	r.Tick(t0)
	if len(*fired) != 0 {
		t.Fatal("fired on the priming tick")
	}
	// Slow drip: below the per-tick limit.
	ctr.Add(5)
	r.Tick(t0.Add(time.Second))
	if len(*fired) != 0 {
		t.Fatal("fired on a slow retry drip")
	}
	// Burst: 50 retries in one tick.
	ctr.Add(50)
	r.Tick(t0.Add(2 * time.Second))
	if len(*fired) != 1 || (*fired)[0].Detector != "retry_storm" {
		t.Fatalf("fired = %v", *fired)
	}
	// Storm over: delta back to zero, detector clears and re-arms.
	r.Tick(t0.Add(3 * time.Second))
	ctr.Add(50)
	r.Tick(t0.Add(4 * time.Second))
	if len(*fired) != 2 {
		t.Fatal("did not re-fire on a second burst")
	}
}

// TestRunnerStartStop is the only test touching the real ticker: Start
// then Stop must not leak the goroutine or deadlock.
func TestRunnerStartStop(t *testing.T) {
	r := NewRunner(time.Hour) // never actually ticks
	r.Start()
	r.Start() // idempotent
	r.Stop()
	r.Stop() // idempotent
}
