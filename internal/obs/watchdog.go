package obs

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Anomaly watchdogs: a Runner evaluates pluggable Detectors on a ticker
// against live sources — the active-query registry, the Go runtime, the
// Gibbs chain health feed, the store's WAL, and the MPP retry counters.
// Every detector is a pure function of (its source, the tick's clock
// value), so tests drive Tick with an injected clock and synthetic
// sources instead of sleeping. Hysteresis wraps each detector: a
// finding must persist for FireAfter consecutive ticks to open an
// incident, and the condition must stay clear for ClearAfter ticks
// before the detector re-arms, so a flapping signal yields one incident
// rather than a storm.

// Finding is one detector's report of an anomaly: what fired, a
// human-readable summary, and — when a specific query is implicated —
// enough of its identity for the incident store to capture its plan.
type Finding struct {
	Detector  string `json:"detector"`
	Summary   string `json:"summary"`
	QueryID   string `json:"query_id,omitempty"`
	QueryKind string `json:"query_kind,omitempty"`
	QueryText string `json:"query_text,omitempty"`
}

// Detector checks one anomaly class. Check is called once per runner
// tick with the tick's clock value and reports whether the anomaly is
// currently present; detectors keep their own cross-tick state (heap
// windows, last-seen counters) and must be safe for use from the single
// runner goroutine plus Tick calls in tests.
type Detector interface {
	Name() string
	Check(now time.Time) (Finding, bool)
}

// Hysteresis is the fire/clear debounce applied to a detector.
// Zero values mean 1: fire on the first bad tick, re-arm on the first
// good one.
type Hysteresis struct {
	FireAfter  int // consecutive bad ticks before firing
	ClearAfter int // consecutive good ticks before re-arming
}

func (h Hysteresis) withDefaults() Hysteresis {
	if h.FireAfter < 1 {
		h.FireAfter = 1
	}
	if h.ClearAfter < 1 {
		h.ClearAfter = 1
	}
	return h
}

// armed is one registered detector plus its hysteresis state.
type armed struct {
	d      Detector
	h      Hysteresis
	bad    int  // consecutive bad ticks
	good   int  // consecutive good ticks while firing
	firing bool // fired and not yet re-armed
}

// Runner evaluates detectors on a ticker. OnFire receives each
// detector's finding exactly once per fire/clear cycle (the incident
// store's Open, in production). The zero interval defaults to 5s.
type Runner struct {
	OnFire func(Finding)

	interval time.Duration
	now      func() time.Time

	mu        sync.Mutex
	detectors []*armed

	stop chan struct{}
	done chan struct{}
}

// NewRunner returns a stopped runner ticking every interval once
// started.
func NewRunner(interval time.Duration) *Runner {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Runner{interval: interval, now: time.Now}
}

func init() {
	Default.Help("probkb_watchdog_ticks_total", "Watchdog evaluation rounds run.")
	Default.Help("probkb_watchdog_findings_total", "Watchdog detector firings, by detector.")
}

// Add registers a detector under the given hysteresis.
func (r *Runner) Add(d Detector, h Hysteresis) *Runner {
	r.mu.Lock()
	r.detectors = append(r.detectors, &armed{d: d, h: h.withDefaults()})
	r.mu.Unlock()
	return r
}

// Tick evaluates every detector once against the given clock value —
// the runner goroutine calls it each interval; tests call it directly
// with synthetic times.
func (r *Runner) Tick(now time.Time) {
	Default.Counter("probkb_watchdog_ticks_total").Inc()
	r.mu.Lock()
	ds := append([]*armed(nil), r.detectors...)
	r.mu.Unlock()
	for _, a := range ds {
		f, bad := a.d.Check(now)
		if bad {
			a.bad++
			a.good = 0
			if !a.firing && a.bad >= a.h.FireAfter {
				a.firing = true
				Default.Counter("probkb_watchdog_findings_total", L("detector", a.d.Name())).Inc()
				Logger().Warn("watchdog fired", "detector", a.d.Name(), "summary", f.Summary)
				if r.OnFire != nil {
					r.OnFire(f)
				}
			}
			continue
		}
		a.bad = 0
		if a.firing {
			a.good++
			if a.good >= a.h.ClearAfter {
				a.firing = false
				a.good = 0
			}
		}
	}
}

// Start launches the ticker goroutine; Stop ends it. Start on a running
// runner is a no-op.
func (r *Runner) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				r.Tick(now)
			}
		}
	}(r.stop, r.done)
}

// Stop halts the ticker goroutine and waits for it to exit.
func (r *Runner) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// --- Detectors ---------------------------------------------------------

// StuckQueryDetector flags any registered query running longer than
// MaxElapsed — the unbounded-work failure mode the active-query
// registry exists to expose.
type StuckQueryDetector struct {
	Registry   *QueryRegistry
	MaxElapsed time.Duration
}

func (d *StuckQueryDetector) Name() string { return "stuck_query" }

func (d *StuckQueryDetector) Check(now time.Time) (Finding, bool) {
	for _, q := range d.Registry.Snapshot(now) {
		if q.Elapsed > d.MaxElapsed {
			return Finding{
				Detector: d.Name(),
				Summary: fmt.Sprintf("query %s (%s) running %s in phase %q, limit %s",
					q.ID, q.Kind, q.Elapsed.Round(time.Millisecond), q.Phase, d.MaxElapsed),
				QueryID: q.ID, QueryKind: q.Kind, QueryText: q.Text,
			}, true
		}
	}
	return Finding{}, false
}

// GoroutineLeakDetector flags a goroutine count above Max. Sample
// defaults to runtime.NumGoroutine; tests inject a synthetic counter.
type GoroutineLeakDetector struct {
	Max    int
	Sample func() int
}

func (d *GoroutineLeakDetector) Name() string { return "goroutine_leak" }

func (d *GoroutineLeakDetector) Check(time.Time) (Finding, bool) {
	sample := d.Sample
	if sample == nil {
		sample = runtime.NumGoroutine
	}
	if n := sample(); n > d.Max {
		return Finding{
			Detector: d.Name(),
			Summary:  fmt.Sprintf("%d goroutines, limit %d", n, d.Max),
		}, true
	}
	return Finding{}, false
}

// HeapGrowthDetector flags heap that grows on every one of Window
// consecutive ticks by at least MinGrowth bytes in total — a slope
// check, so a stable-but-large heap never fires. Sample defaults to
// reading runtime.MemStats.HeapAlloc.
type HeapGrowthDetector struct {
	Window    int    // ticks of monotone growth required (default 4)
	MinGrowth uint64 // bytes over the window (default 64 MiB)
	Sample    func() uint64

	window []uint64
}

func (d *HeapGrowthDetector) Name() string { return "heap_growth" }

func (d *HeapGrowthDetector) Check(time.Time) (Finding, bool) {
	sample := d.Sample
	if sample == nil {
		sample = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	win := d.Window
	if win < 2 {
		win = 4
	}
	min := d.MinGrowth
	if min == 0 {
		min = 64 << 20
	}
	d.window = append(d.window, sample())
	if len(d.window) > win {
		d.window = d.window[len(d.window)-win:]
	}
	if len(d.window) < win {
		return Finding{}, false
	}
	for i := 1; i < len(d.window); i++ {
		if d.window[i] <= d.window[i-1] {
			return Finding{}, false
		}
	}
	growth := d.window[len(d.window)-1] - d.window[0]
	if growth < min {
		return Finding{}, false
	}
	return Finding{
		Detector: d.Name(),
		Summary: fmt.Sprintf("heap grew %d bytes over %d consecutive ticks (now %d bytes)",
			growth, win-1, d.window[len(d.window)-1]),
	}, true
}

// ChainHealth is the live Gibbs feed: the sampler reports each sweep
// and each checkpoint's max split R-hat; detectors read the latest
// state. Gibbs is the process-wide instance internal/infer updates.
type ChainHealth struct {
	mu     sync.Mutex
	active bool
	sweep  int
	rhat   float64
}

// Gibbs is the process-wide chain-health feed.
var Gibbs = &ChainHealth{}

// ObserveSweep records sampling progress (called once per sweep).
func (c *ChainHealth) ObserveSweep(sweep int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.active = true
	c.sweep = sweep
	c.mu.Unlock()
}

// ObserveRHat records the latest checkpoint's max split R-hat.
func (c *ChainHealth) ObserveRHat(rhat float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rhat = rhat
	c.mu.Unlock()
}

// Done marks the chain finished; detectors go quiet.
func (c *ChainHealth) Done() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.active = false
	c.sweep, c.rhat = 0, 0
	c.mu.Unlock()
}

// State returns the current (active, sweep, rhat) triple.
func (c *ChainHealth) State() (active bool, sweep int, rhat float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active, c.sweep, c.rhat
}

// GibbsDivergenceDetector flags an active chain whose latest checkpoint
// R-hat exceeds MaxRHat — the chain is drifting, not converging.
type GibbsDivergenceDetector struct {
	Health  *ChainHealth
	MaxRHat float64
}

func (d *GibbsDivergenceDetector) Name() string { return "gibbs_divergence" }

func (d *GibbsDivergenceDetector) Check(time.Time) (Finding, bool) {
	active, sweep, rhat := d.Health.State()
	if active && rhat > d.MaxRHat {
		return Finding{
			Detector: d.Name(),
			Summary:  fmt.Sprintf("gibbs chain at sweep %d has R-hat %.3f, limit %.3f", sweep, rhat, d.MaxRHat),
		}, true
	}
	return Finding{}, false
}

// GibbsStallDetector flags an active chain whose sweep counter did not
// advance between two runner ticks — the sampler is alive but stuck.
type GibbsStallDetector struct {
	Health *ChainHealth

	lastSweep  int
	lastActive bool
}

func (d *GibbsStallDetector) Name() string { return "gibbs_stall" }

func (d *GibbsStallDetector) Check(time.Time) (Finding, bool) {
	active, sweep, _ := d.Health.State()
	stalled := active && d.lastActive && sweep == d.lastSweep
	d.lastActive, d.lastSweep = active, sweep
	if stalled {
		return Finding{
			Detector: d.Name(),
			Summary:  fmt.Sprintf("gibbs chain stalled at sweep %d (no progress since last tick)", sweep),
		}, true
	}
	return Finding{}, false
}

// WALGrowthDetector flags a write-ahead log holding more than
// MaxRecords records. The store zeroes the count at each checkpoint,
// so a high count means the WAL is growing without one.
type WALGrowthDetector struct {
	Records    func() int64
	MaxRecords int64
}

func (d *WALGrowthDetector) Name() string { return "wal_growth" }

func (d *WALGrowthDetector) Check(time.Time) (Finding, bool) {
	if n := d.Records(); n > d.MaxRecords {
		return Finding{
			Detector: d.Name(),
			Summary:  fmt.Sprintf("WAL holds %d records without a checkpoint, limit %d", n, d.MaxRecords),
		}, true
	}
	return Finding{}, false
}

// RetryStormDetector flags MPP segment retries arriving faster than
// MaxPerTick per runner tick, summing the (label-split) retry counter
// from Registry. A burst that stops does not keep it firing: only the
// delta since the previous tick counts.
type RetryStormDetector struct {
	Registry   *Registry
	MaxPerTick int64

	last   float64
	primed bool
}

func (d *RetryStormDetector) Name() string { return "retry_storm" }

func (d *RetryStormDetector) Check(time.Time) (Finding, bool) {
	cur := d.Registry.Sum("probkb_mpp_segment_retries_total")
	delta := cur - d.last
	first := !d.primed
	d.last, d.primed = cur, true
	if first || delta <= float64(d.MaxPerTick) {
		return Finding{}, false
	}
	return Finding{
		Detector: d.Name(),
		Summary:  fmt.Sprintf("%d segment retries since last tick, limit %d", int64(delta), d.MaxPerTick),
	}, true
}
