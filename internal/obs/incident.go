package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Structured incident reports. When a watchdog detector fires, the
// incident store captures the process state an operator would want for
// a post-mortem — a flight-recorder slice, a full goroutine dump, a
// metrics snapshot, the active queries, and (when the finding names a
// query) its analyzed plan — into a bounded ring served at
// GET /debug/incidents and journaled as `incident` events. The same
// capture path backs crash dumps written on panic/SIGQUIT, so the
// evidence survives the process.

// Incident is one captured anomaly report.
type Incident struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Detector string    `json:"detector"`
	Summary  string    `json:"summary"`

	// Query identifies the offending request when the detector named one.
	QueryID   string `json:"query_id,omitempty"`
	QueryKind string `json:"query_kind,omitempty"`
	QueryText string `json:"query_text,omitempty"`
	// Plan is the offending query's analyzed plan, when a planner is
	// wired and the query text re-plans.
	Plan string `json:"plan,omitempty"`

	// Flight is the flight-recorder slice leading up to the incident;
	// Timeline is its rendered form.
	Flight   []FlightEvent `json:"flight"`
	Timeline string        `json:"timeline"`

	// Queries lists what was in flight at capture time.
	Queries []QueryInfo `json:"queries,omitempty"`

	// Metrics is a scalar snapshot of the registry (name{labels} → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Goroutines is a full goroutine stack dump.
	Goroutines string `json:"goroutines"`
}

// Emitter is the journal hook: satisfied by *journal.Writer, declared
// here so obs does not depend on its own subpackage.
type Emitter interface {
	Emit(typ string, payload any)
}

// incidentEvent is the journal payload: the incident minus its bulky
// captures (the full report stays readable at /debug/incidents/{id}).
type incidentEvent struct {
	ID           string `json:"id"`
	Detector     string `json:"detector"`
	Summary      string `json:"summary"`
	QueryID      string `json:"query_id,omitempty"`
	FlightEvents int    `json:"flight_events"`
}

// IncidentStore is a bounded ring of incidents. The zero value is not
// usable; use NewIncidentStore. A nil store's methods are no-ops.
type IncidentStore struct {
	// Capture sources, defaulting to the process-wide instances; tests
	// substitute private ones.
	Flight   *FlightRecorder
	Queries  *QueryRegistry
	Registry *Registry
	// FlightTail bounds the flight slice captured per incident
	// (default 256 events).
	FlightTail int

	mu      sync.Mutex
	seq     int
	ring    []*Incident // newest last, bounded at max
	max     int
	journal Emitter
	planner func(kind, text string) string
	now     func() time.Time
}

// NewIncidentStore returns a store retaining the last max incidents.
func NewIncidentStore(max int) *IncidentStore {
	if max < 1 {
		max = 1
	}
	return &IncidentStore{
		Flight: DefaultFlight, Queries: Queries, Registry: Default,
		FlightTail: 256, max: max, now: time.Now,
	}
}

// DefaultIncidents is the process-wide store the server serves and the
// watchdog runner opens incidents in.
var DefaultIncidents = NewIncidentStore(32)

func init() {
	Default.Help("probkb_incidents_total", "Incidents opened by watchdog detectors, by detector.")
}

// SetJournal attaches the run journal incidents are emitted into
// (typically the live expansion's *journal.Writer); nil detaches.
func (s *IncidentStore) SetJournal(e Emitter) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.journal = e
	s.mu.Unlock()
}

// SetPlanner attaches the plan-capture hook: given the offending
// query's kind and text, return its analyzed plan ("" when the text
// does not re-plan). The server wires this to EXPLAIN.
func (s *IncidentStore) SetPlanner(p func(kind, text string) string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.planner = p
	s.mu.Unlock()
}

// setClock replaces the store's time source (tests only).
func (s *IncidentStore) setClock(now func() time.Time) { s.now = now }

// Open captures an incident for the finding and returns it. Safe to
// call from the watchdog runner goroutine.
func (s *IncidentStore) Open(f Finding) *Incident {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.seq++
	inc := &Incident{
		ID:       "i" + strconv.Itoa(s.seq),
		Time:     s.now(),
		Detector: f.Detector,
		Summary:  f.Summary,
		QueryID:  f.QueryID, QueryKind: f.QueryKind, QueryText: f.QueryText,
	}
	jr, planner := s.journal, s.planner
	s.mu.Unlock()

	// Capture outside the lock: dumps and snapshots are slow and must
	// not block List/Get.
	inc.Flight = s.Flight.Slice(s.FlightTail)
	inc.Timeline = Timeline(inc.Flight)
	inc.Queries = s.Queries.Snapshot(inc.Time)
	inc.Metrics = s.Registry.Snapshot()
	inc.Goroutines = goroutineDump()
	if planner != nil && f.QueryText != "" {
		inc.Plan = planner(f.QueryKind, f.QueryText)
	}

	s.mu.Lock()
	s.ring = append(s.ring, inc)
	if len(s.ring) > s.max {
		s.ring = s.ring[len(s.ring)-s.max:]
	}
	s.mu.Unlock()

	Default.Counter("probkb_incidents_total", L("detector", f.Detector)).Inc()
	if jr != nil {
		jr.Emit("incident", incidentEvent{
			ID: inc.ID, Detector: inc.Detector, Summary: inc.Summary,
			QueryID: inc.QueryID, FlightEvents: len(inc.Flight),
		})
	}
	return inc
}

// List returns the retained incidents, newest first.
func (s *IncidentStore) List() []*Incident {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Incident, len(s.ring))
	for i, inc := range s.ring {
		out[len(s.ring)-1-i] = inc
	}
	return out
}

// Get returns the incident with the given ID, or nil.
func (s *IncidentStore) Get(id string) *Incident {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, inc := range s.ring {
		if inc.ID == id {
			return inc
		}
	}
	return nil
}

// Reset drops all incidents (tests).
func (s *IncidentStore) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring, s.seq = nil, 0
	s.mu.Unlock()
}

func goroutineDump() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}

// WriteCrashDump captures the process state the way Open does — flight
// timeline, active queries, metrics, goroutine dump — plus every
// retained incident, and writes it as one JSON file under dir. Called
// on panic and SIGQUIT so post-mortems survive the process; the path
// written is returned.
func (s *IncidentStore) WriteCrashDump(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	now := time.Now
	if s != nil && s.now != nil {
		now = s.now
	}
	flight := DefaultFlight
	queries := Queries
	registry := Default
	if s != nil {
		flight, queries, registry = s.Flight, s.Queries, s.Registry
	}
	ts := now()
	dump := struct {
		Time      time.Time          `json:"time"`
		Reason    string             `json:"reason"`
		Timeline  string             `json:"timeline"`
		Queries   []QueryInfo        `json:"queries,omitempty"`
		Metrics   map[string]float64 `json:"metrics,omitempty"`
		Incidents []*Incident        `json:"incidents,omitempty"`
		Goroutine string             `json:"goroutines"`
	}{
		Time:      ts,
		Reason:    reason,
		Timeline:  Timeline(flight.Events()),
		Queries:   queries.Snapshot(ts),
		Metrics:   registry.Snapshot(),
		Incidents: s.List(),
		Goroutine: goroutineDump(),
	}
	path := filepath.Join(dir, fmt.Sprintf("crash-%s-%s.json", ts.Format("20060102-150405"), sanitizeReason(reason)))
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func sanitizeReason(r string) string {
	out := []rune(r)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
		default:
			out[i] = '_'
		}
	}
	if len(out) > 32 {
		out = out[:32]
	}
	return string(out)
}

// SummaryLine renders the one-line listing view `probkb incidents` and
// /debug/incidents share conceptually: id, age, detector, summary.
func (inc *Incident) SummaryLine(now time.Time) string {
	age := now.Sub(inc.Time).Round(time.Second)
	return fmt.Sprintf("%-5s %8s ago  %-16s %s", inc.ID, age, inc.Detector, inc.Summary)
}

// MetricsKeys returns the incident's metric names sorted (rendering
// helper for the CLI).
func (inc *Incident) MetricsKeys() []string {
	keys := make([]string, 0, len(inc.Metrics))
	for k := range inc.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
