package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic time source advancing one second
// per call, for recorders that stamp their own events.
func fakeClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(3)
	f.setClock(fakeClock())
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		f.Note("span", name, "")
	}
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Name != want {
			t.Errorf("event %d = %q, want %q (oldest-first order)", i, evs[i].Name, want)
		}
	}
	if !evs[0].Time.Before(evs[1].Time) || !evs[1].Time.Before(evs[2].Time) {
		t.Error("event times not monotone oldest-first")
	}
	if got := f.Slice(2); len(got) != 2 || got[0].Name != "d" || got[1].Name != "e" {
		t.Errorf("Slice(2) = %v", got)
	}
	if got := f.Slice(0); len(got) != 3 {
		t.Errorf("Slice(0) = %d events, want all 3", len(got))
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Note("log", "kept", "")
	f.SetEnabled(false)
	f.Note("log", "dropped", "")
	if evs := f.Events(); len(evs) != 1 || evs[0].Name != "kept" {
		t.Fatalf("disabled recorder stored events: %v", evs)
	}
	f.SetEnabled(true)
	f.Note("log", "kept2", "")
	if evs := f.Events(); len(evs) != 2 {
		t.Fatalf("re-enabled recorder did not record: %v", evs)
	}
	f.Reset()
	if evs := f.Events(); len(evs) != 0 {
		t.Fatalf("Reset left events: %v", evs)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Note("span", "x", "") // must not panic
	if f.Events() != nil || f.Enabled() {
		t.Fatal("nil recorder misbehaves")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Note("query", "phase run", "")
				f.Events()
			}
		}()
	}
	wg.Wait()
	if len(f.Events()) != 64 {
		t.Fatalf("ring not full after 800 writes: %d", len(f.Events()))
	}
}

// TestFlightRecorderCorrelatedTimeline drives the real hooks — a span
// tree, a context-stamped log line, and a query lifecycle — and asserts
// they land in DefaultFlight as one correlated, renderable timeline.
func TestFlightRecorderCorrelatedTimeline(t *testing.T) {
	DefaultFlight.Reset()
	defer DefaultFlight.Reset()

	ctx, span := StartSpan(t.Context(), "flight-root")
	ctx, q := Queries.Begin(ctx, "sql", "SELECT 1")
	q.SetPhase("run")
	Log(ctx).Info("flight hello")
	Queries.Finish(q)
	span.End()

	evs := DefaultFlight.Events()
	var haveSpan, haveLog, haveBegin, havePhase, haveFinish bool
	for _, ev := range evs {
		switch {
		case ev.Kind == "span" && ev.Name == "flight-root":
			haveSpan = true
			if ev.TraceID != span.TraceID() {
				t.Errorf("span event trace id = %d, want %d", ev.TraceID, span.TraceID())
			}
		case ev.Kind == "log" && strings.Contains(ev.Detail, "flight hello"):
			haveLog = true
			if ev.QueryID != q.ID() {
				t.Errorf("log event query id = %q, want %q", ev.QueryID, q.ID())
			}
			if ev.TraceID != span.TraceID() {
				t.Errorf("log event trace id = %d, want %d", ev.TraceID, span.TraceID())
			}
		case ev.Kind == "query" && ev.Name == "begin sql":
			haveBegin = true
			if ev.Detail != "SELECT 1" {
				t.Errorf("begin event detail = %q", ev.Detail)
			}
		case ev.Kind == "query" && ev.Name == "phase run":
			havePhase = true
		case ev.Kind == "query" && ev.Name == "finish sql":
			haveFinish = true
		}
	}
	if !haveSpan || !haveLog || !haveBegin || !havePhase || !haveFinish {
		t.Fatalf("timeline missing hooks (span=%v log=%v begin=%v phase=%v finish=%v):\n%s",
			haveSpan, haveLog, haveBegin, havePhase, haveFinish, Timeline(evs))
	}

	text := Timeline(evs)
	for _, want := range []string{"begin sql", "phase run", "flight hello", "finish sql", q.ID()} {
		if !strings.Contains(text, want) {
			t.Errorf("Timeline missing %q:\n%s", want, text)
		}
	}
}

// The acceptance criterion: recording must be cheap enough that the
// always-on recorder is within noise of a disabled one. Compare
// BenchmarkFlightRecordOn and BenchmarkFlightRecordOff.
func BenchmarkFlightRecordOn(b *testing.B) {
	f := NewFlightRecorder(2048)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.Record(FlightEvent{Time: time.Unix(0, 1), Kind: "span", Name: "bench"})
		}
	})
}

func BenchmarkFlightRecordOff(b *testing.B) {
	f := NewFlightRecorder(2048)
	f.SetEnabled(false)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.Record(FlightEvent{Time: time.Unix(0, 1), Kind: "span", Name: "bench"})
		}
	})
}
