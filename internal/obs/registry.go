package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric families. A family owns every time series sharing one metric
// name; series within a family differ only by label sets. Counters and
// histograms are monotone; gauges move both ways. All operations are
// safe for concurrent use — counters and gauges are single atomics,
// histograms one atomic per bucket — so hot paths (per-operator timings,
// per-sweep sampler stats) can record without contending on the
// registry lock, which is taken only on first lookup.

// Label is one key/value dimension of a time series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increases the counter by d; negative deltas are ignored (counters
// are monotone by contract).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed, pre-declared buckets
// (upper bounds, ascending); observations above the last bound land in
// the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets are the default histogram bounds for wall times, in
// seconds: 10µs up to ~100s, a decade per 3 buckets.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
	0.1, 0.25, 1, 2.5, 10, 25, 100,
}

// SizeBuckets are the default histogram bounds for byte volumes:
// 256B up to 1GiB.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// family is every series of one metric name. mu guards everything but
// name; help/kind/bounds are settled by the first registrations but may
// race with concurrent lookups otherwise.
type family struct {
	name string

	mu     sync.Mutex
	help   string
	kind   metricKind
	bounds []float64 // histograms only
	series map[string]*series
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every instrumented package
// records into.
var Default = NewRegistry()

// Help sets the HELP string emitted for a metric name. It may be called
// before or after the first series of that name exists.
func (r *Registry) Help(name, help string) {
	f := r.family(name, kindCounter, nil, false)
	f.mu.Lock()
	f.help = help
	f.mu.Unlock()
}

// family returns the family for name, creating it if absent. With create
// set the call is a real registration: it fixes the family's kind (and,
// first-come, histogram bounds); a name reused with a different kind
// panics — that is a programming error, and silently coercing would
// corrupt the exposition. Without create (Help on a not-yet-registered
// metric) an empty placeholder is made whose kind the first real
// registration settles.
func (r *Registry) family(name string, kind metricKind, bounds []float64, create bool) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if create {
		f.mu.Lock()
		if len(f.series) > 0 && f.kind != kind {
			k := f.kind
			f.mu.Unlock()
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, k, kind))
		}
		f.kind = kind
		if bounds != nil && f.bounds == nil {
			f.bounds = bounds
		}
		f.mu.Unlock()
	}
	return f
}

// signature renders a label set as a canonical (sorted) key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a].Key < labels[b].Key })
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func (f *family) get(labels []Label) *series {
	labels = append([]Label(nil), labels...)
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[sig]
	if s == nil {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			b := f.bounds
			if b == nil {
				b = DurationBuckets
			}
			s.h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns (creating if needed) the counter for name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.family(name, kindCounter, nil, true).get(labels).c
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.family(name, kindGauge, nil, true).get(labels).g
}

// Histogram returns (creating if needed) the histogram for name and
// labels. buckets fixes the bounds on first creation; nil means
// DurationBuckets. All series of one name share the bounds declared
// first.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return r.family(name, kindHistogram, buckets, true).get(labels).h
}

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatLabels renders {k="v",...}; extra (e.g. the le bound) is
// appended last. Empty input renders as "".
func formatLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in the text exposition format,
// families and series in deterministic (sorted) order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		help, kind := f.help, f.kind
		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		all := make([]*series, 0, len(sigs))
		for _, s := range sigs {
			all = append(all, f.series[s])
		}
		f.mu.Unlock()
		if len(all) == 0 {
			continue
		}

		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, kind); err != nil {
			return err
		}
		for _, s := range all {
			var err error
			switch kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, ""), s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, ""), formatFloat(s.g.Value()))
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	var cum int64
	for i, bound := range s.h.bounds {
		cum += s.h.counts[i].Load()
		le := fmt.Sprintf(`le="%s"`, formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.labels, le), cum); err != nil {
			return err
		}
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, formatLabels(s.labels, ""), s.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels, ""), s.h.Count())
	return err
}

// Sum returns the total over every series of one counter or gauge
// family (0 when the name is unknown). Watchdog detectors use it to
// read label-split counters as one number.
func (r *Registry) Sum(name string) float64 {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	var total float64
	f.mu.Lock()
	for _, s := range f.series {
		switch f.kind {
		case kindCounter:
			total += float64(s.c.Value())
		case kindGauge:
			total += s.g.Value()
		}
	}
	f.mu.Unlock()
	return total
}

// Snapshot returns every scalar value keyed by name{labels}. Counters
// and gauges appear under their name; histograms contribute name_sum and
// name_count. Tests assert against this instead of parsing exposition
// text.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, s := range f.series {
			key := f.name + formatLabels(s.labels, "")
			switch f.kind {
			case kindCounter:
				out[key] = float64(s.c.Value())
			case kindGauge:
				out[key] = s.g.Value()
			case kindHistogram:
				out[f.name+"_sum"+formatLabels(s.labels, "")] = s.h.Sum()
				out[f.name+"_count"+formatLabels(s.labels, "")] = float64(s.h.Count())
			}
		}
		f.mu.Unlock()
	}
	return out
}
