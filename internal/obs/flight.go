package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: an always-on, bounded ring of recent observability
// events — span ends, log records, journal events, and query lifecycle
// transitions — kept in memory so that the moments *before* an anomaly
// are available when a watchdog fires or the process crashes. Incident
// reports (incident.go) and crash dumps embed a slice of this ring as
// one correlated timeline.
//
// The recorder is deliberately lock-cheap: an atomic enabled check in
// front of a single short mutex-guarded ring write, no allocation
// inside the critical section. BenchmarkFlightRecord measures the
// on-vs-off cost.

// FlightEvent is one entry in the recorder's ring. Kind is the source
// ("span", "log", "journal", "query"); TraceID and QueryID, when set,
// correlate the entry with /debug/traces and /debug/queries.
type FlightEvent struct {
	Time    time.Time     `json:"time"`
	Kind    string        `json:"kind"`
	Name    string        `json:"name"`
	Detail  string        `json:"detail,omitempty"`
	TraceID uint64        `json:"trace_id,omitempty"`
	QueryID string        `json:"query_id,omitempty"`
	Dur     time.Duration `json:"dur_ns,omitempty"`
}

// FlightRecorder is a fixed-size ring of FlightEvents. The zero value
// is not usable; use NewFlightRecorder. A nil recorder is a no-op.
type FlightRecorder struct {
	enabled atomic.Bool
	now     func() time.Time // injectable for deterministic tests

	mu   sync.Mutex
	ring []FlightEvent
	next int
	n    int // events written since last Reset, saturating at len(ring)
}

// NewFlightRecorder returns an enabled recorder retaining the last
// size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	f := &FlightRecorder{ring: make([]FlightEvent, size), now: time.Now}
	f.enabled.Store(true)
	return f
}

// DefaultFlight is the process-wide recorder every obs hook writes to.
var DefaultFlight = NewFlightRecorder(2048)

// SetEnabled turns recording on or off (the ring keeps its contents).
func (f *FlightRecorder) SetEnabled(on bool) {
	if f != nil {
		f.enabled.Store(on)
	}
}

// Enabled reports whether Record currently stores events.
func (f *FlightRecorder) Enabled() bool { return f != nil && f.enabled.Load() }

// setClock replaces the recorder's time source (tests only).
func (f *FlightRecorder) setClock(now func() time.Time) { f.now = now }

// Record appends ev to the ring, stamping ev.Time if unset. Cheap when
// disabled: one atomic load, no lock.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil || !f.enabled.Load() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = f.now()
	}
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// Note records a bare event built from its arguments — the convenience
// form hooks use.
func (f *FlightRecorder) Note(kind, name, detail string) {
	f.Record(FlightEvent{Kind: kind, Name: name, Detail: detail})
}

// Events returns the retained events oldest-first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.n)
	start := (f.next - f.n + 2*len(f.ring)) % len(f.ring)
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// Slice returns the most recent n events, oldest-first (all retained
// events when n <= 0 or larger than the ring).
func (f *FlightRecorder) Slice(n int) []FlightEvent {
	evs := f.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Reset drops all retained events (tests and post-dump hygiene).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.next, f.n = 0, 0
	f.mu.Unlock()
}

// Timeline renders events as one text timeline, oldest-first:
//
//	15:04:05.123  query    begin sql        q7 SELECT ...
//	15:04:05.140  span     scan T           trace=42 dur=17ms
func Timeline(evs []FlightEvent) string {
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "%s  %-8s %s", ev.Time.Format("15:04:05.000"), ev.Kind, ev.Name)
		if ev.QueryID != "" {
			fmt.Fprintf(&b, "  %s", ev.QueryID)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, "  %s", ev.Detail)
		}
		if ev.TraceID != 0 {
			fmt.Fprintf(&b, "  trace=%d", ev.TraceID)
		}
		if ev.Dur != 0 {
			fmt.Fprintf(&b, "  dur=%s", ev.Dur.Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
