package obs

import (
	"context"
	"sync"
	"time"
)

// Slow-query log: queries whose wall time crosses a configurable
// threshold get their analyzed plan logged through the slog bridge and
// retained in a bounded ring, so the evidence for "what was slow last
// night" survives without unbounded memory. GET /debug/slow serves the
// ring newest-first.

// SlowQuery is one retained slow-query record.
type SlowQuery struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Text    string        `json:"query"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Plan    string        `json:"plan,omitempty"` // EXPLAIN ANALYZE rendering
	Time    time.Time     `json:"time"`
}

// SlowLog retains queries slower than its threshold in a bounded ring.
// A nil or zero-threshold log drops everything; methods are safe on a
// nil receiver.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []SlowQuery
	next      int
	size      int
}

// DefaultSlowLog is the process-wide slow-query log (threshold off
// until SetThreshold; the server's -slow flag sets it).
var DefaultSlowLog = NewSlowLog(128)

// NewSlowLog returns a log retaining at most size records.
func NewSlowLog(size int) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{ring: make([]SlowQuery, size)}
}

// SetThreshold sets the slow threshold; 0 disables the log.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Threshold returns the current slow threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// Note records a finished query if it crossed the threshold: the record
// enters the ring, a counter increments, and the slog bridge logs it
// (with the plan, so the log line alone is actionable). It reports
// whether the query was slow.
func (l *SlowLog) Note(ctx context.Context, q SlowQuery) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	if l.threshold <= 0 || q.Elapsed < l.threshold {
		l.mu.Unlock()
		return false
	}
	if q.Time.IsZero() {
		q.Time = time.Now()
	}
	l.ring[l.next] = q
	l.next = (l.next + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	l.mu.Unlock()
	Default.Counter("probkb_slow_queries_total").Inc()
	Log(ctx).Warn("slow query",
		"query_id", q.ID, "kind", q.Kind, "elapsed", q.Elapsed.String(),
		"query", q.Text, "plan", q.Plan)
	return true
}

// List returns the retained slow queries, newest first.
func (l *SlowLog) List() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.size)
	for i := 0; i < l.size; i++ {
		// Walk backwards from the most recently written slot.
		idx := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
