package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline tracing. A Span is one timed stage of a request or expansion
// run; spans nest, forming a tree whose text rendering generalizes the
// engine's EXPLAIN ANALYZE output (Figure 4 of the paper) to the whole
// expansion pipeline: grounding iterations, factor export, Gibbs
// inference, and quality control all appear as children of one root
// span with self times and attributes.
//
// Usage:
//
//	ctx, span := obs.StartSpan(ctx, "ground")
//	defer span.End()
//	span.SetAttr("facts", added)
//
// Roots (spans started with no parent in ctx) are pushed into their
// tracer's bounded ring when they end, so /debug/traces can show the
// most recent pipeline runs of a live server.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one node of a trace tree.
type Span struct {
	name    string
	traceID uint64
	spanID  uint64
	start   time.Time

	mu       sync.Mutex
	end      time.Time // zero while running
	attrs    []Attr
	children []*Span

	tracer *Tracer // set on roots only
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// TraceID returns the id shared by every span of one trace tree.
func (s *Span) TraceID() uint64 { return s.traceID }

// SpanID returns the span's own id.
func (s *Span) SpanID() uint64 { return s.spanID }

// Start returns when the span started.
func (s *Span) Start() time.Time { return s.start }

// SetAttr annotates the span; values render with %v.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End stops the clock. Ending twice keeps the first end time. A root
// span is published to its tracer's ring on first End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	ended := !s.end.IsZero()
	if !ended {
		s.end = time.Now()
	}
	t := s.tracer
	var dur time.Duration
	if !ended {
		dur = s.end.Sub(s.start)
	}
	s.mu.Unlock()
	if !ended {
		DefaultFlight.Record(FlightEvent{
			Kind: "span", Name: s.name, TraceID: s.traceID, Dur: dur,
		})
		if t != nil {
			t.push(s)
		}
	}
}

// Duration returns the span's wall time (elapsed so far if running).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SelfTime returns the span's wall time minus its children's: the time
// spent in the stage itself, the per-operator "self time" convention of
// the engine's Explain.
func (s *Span) SelfTime() time.Duration {
	s.mu.Lock()
	d := s.durationLocked()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, k := range kids {
		d -= k.Duration()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Children returns a copy of the span's current children.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Render returns the trace tree as indented text, one span per line with
// total time, self time, and attributes:
//
//	-> expand  (time=12.4ms self=80µs) engine=ProbKB
//	  -> ground  (time=9.1ms self=1.2ms) iterations=3
func (s *Span) Render() string {
	var b strings.Builder
	renderSpan(&b, s, 0)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	fmt.Fprintf(b, "%s-> %s  (time=%s self=%s)",
		strings.Repeat("  ", depth), s.name,
		s.Duration().Round(time.Microsecond), s.SelfTime().Round(time.Microsecond))
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, k := range s.Children() {
		renderSpan(b, k, depth+1)
	}
}

// ids are process-unique; trace ids are the root's span id.
var nextID atomic.Uint64

type spanKey struct{}

// Tracer keeps a bounded ring of recently finished root spans.
type Tracer struct {
	mu   sync.Mutex
	ring []*Span
	next int
	size int
}

// NewTracer returns a tracer retaining the last size root spans.
func NewTracer(size int) *Tracer {
	if size < 1 {
		size = 1
	}
	return &Tracer{ring: make([]*Span, 0, size), size: size}
}

// DefaultTracer receives every root span started through StartSpan with
// a context carrying no parent.
var DefaultTracer = NewTracer(64)

func (t *Tracer) push(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.size {
		t.ring = append(t.ring, s)
		t.next = len(t.ring) % t.size
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % t.size
}

// Traces returns the retained root spans, most recent first.
func (t *Tracer) Traces() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + len(t.ring)*2) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Last returns the most recently finished root span, or nil.
func (t *Tracer) Last() *Span {
	tr := t.Traces()
	if len(tr) == 0 {
		return nil
	}
	return tr[0]
}

// LastTrace returns the default tracer's most recent root span, or nil.
func LastTrace() *Span { return DefaultTracer.Last() }

// StartSpan starts a span named name. If ctx carries a span, the new
// span becomes its child and shares its trace id; otherwise it is a new
// root registered with the default tracer. The returned context carries
// the new span for further nesting; callers must End it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, DefaultTracer, name)
}

// StartSpanIn is StartSpan recording roots into an explicit tracer
// (tests use private tracers to stay isolated).
func StartSpanIn(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	return startSpan(ctx, t, name)
}

func startSpan(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	id := nextID.Add(1)
	s := &Span{name: name, spanID: id, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		s.traceID = parent.traceID
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		s.traceID = id
		s.tracer = t
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
