package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// Structured logging. The pipeline shares one slog.Logger; Log(ctx)
// stamps records with the trace and span ids of the span carried by
// ctx, so a server log line can be correlated with the trace that
// produced it in /debug/traces.

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(flightHandler{Handler: slog.Default().Handler()}))
}

// flightHandler tees every record the shared logger emits into the
// flight recorder before delegating, so log lines appear on the same
// timeline as spans, journal events, and query transitions. The
// trace/query correlation ids Log(ctx) attaches via With are captured
// in WithAttrs, since slog's non-Context log methods don't carry ctx.
type flightHandler struct {
	slog.Handler
	traceID uint64
	queryID string
}

func (h flightHandler) Handle(ctx context.Context, r slog.Record) error {
	if DefaultFlight.Enabled() {
		ev := FlightEvent{
			Time: r.Time, Kind: "log", Name: r.Level.String(), Detail: r.Message,
			TraceID: h.traceID, QueryID: h.queryID,
		}
		if ev.TraceID == 0 {
			if s := SpanFrom(ctx); s != nil {
				ev.TraceID = s.TraceID()
			}
		}
		if ev.QueryID == "" {
			if q := QueryFrom(ctx); q != nil {
				ev.QueryID = q.ID()
			}
		}
		DefaultFlight.Record(ev)
	}
	return h.Handler.Handle(ctx, r)
}

func (h flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	for _, a := range attrs {
		switch a.Key {
		case "trace_id":
			if a.Value.Kind() == slog.KindUint64 {
				h.traceID = a.Value.Uint64()
			}
		case "query_id":
			h.queryID = a.Value.String()
		}
	}
	h.Handler = h.Handler.WithAttrs(attrs)
	return h
}

func (h flightHandler) WithGroup(name string) slog.Handler {
	h.Handler = h.Handler.WithGroup(name)
	return h
}

// SetLogger replaces the shared logger (e.g. with a JSON handler at a
// chosen level), wrapping it so records still reach the flight
// recorder. Safe for concurrent use.
func SetLogger(l *slog.Logger) {
	if l == nil {
		return
	}
	if _, ok := l.Handler().(flightHandler); !ok {
		l = slog.New(flightHandler{Handler: l.Handler()})
	}
	logger.Store(l)
}

// NewTextLogger builds a slog text logger writing to w at the given
// level and installs it as the shared logger.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	SetLogger(l)
	return l
}

// Logger returns the shared logger.
func Logger() *slog.Logger { return logger.Load() }

// Log returns the shared logger annotated with ctx's trace, span, and
// active-query ids (unannotated when ctx carries neither).
func Log(ctx context.Context) *slog.Logger {
	l := logger.Load()
	if s := SpanFrom(ctx); s != nil {
		l = l.With("trace_id", s.TraceID(), "span_id", s.SpanID())
	}
	if q := QueryFrom(ctx); q != nil {
		l = l.With("query_id", q.ID())
	}
	return l
}
