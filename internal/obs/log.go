package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// Structured logging. The pipeline shares one slog.Logger; Log(ctx)
// stamps records with the trace and span ids of the span carried by
// ctx, so a server log line can be correlated with the trace that
// produced it in /debug/traces.

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.Default())
}

// SetLogger replaces the shared logger (e.g. with a JSON handler at a
// chosen level). Safe for concurrent use.
func SetLogger(l *slog.Logger) {
	if l != nil {
		logger.Store(l)
	}
}

// NewTextLogger builds a slog text logger writing to w at the given
// level and installs it as the shared logger.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	SetLogger(l)
	return l
}

// Logger returns the shared logger.
func Logger() *slog.Logger { return logger.Load() }

// Log returns the shared logger annotated with ctx's trace and span ids
// (unannotated when ctx carries no span).
func Log(ctx context.Context) *slog.Logger {
	l := logger.Load()
	if s := SpanFrom(ctx); s != nil {
		return l.With("trace_id", s.TraceID(), "span_id", s.SpanID())
	}
	return l
}
