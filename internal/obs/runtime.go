package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Go runtime health metrics: goroutine count, heap size, GC pause
// distribution, and a build-info series, refreshed on demand — the
// server calls UpdateRuntimeMetrics at every /metrics scrape, so the
// gauges are current without a background poller.

var runtimeMu sync.Mutex
var lastNumGC uint32

// UpdateRuntimeMetrics refreshes the runtime gauges in the default
// registry and feeds GC pauses observed since the previous call into
// the pause histogram.
func UpdateRuntimeMetrics() {
	runtimeMu.Lock()
	defer runtimeMu.Unlock()

	Default.Help("probkb_go_goroutines", "Number of live goroutines.")
	Default.Gauge("probkb_go_goroutines").Set(float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	Default.Help("probkb_go_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	Default.Gauge("probkb_go_heap_bytes").Set(float64(ms.HeapAlloc))

	// MemStats keeps the last 256 pause durations in a ring indexed by
	// NumGC; replay the ones that happened since the previous scrape.
	Default.Help("probkb_go_gc_pause_seconds", "Stop-the-world GC pause durations.")
	h := Default.Histogram("probkb_go_gc_pause_seconds", DurationBuckets)
	n := ms.NumGC
	missed := n - lastNumGC
	if missed > uint32(len(ms.PauseNs)) {
		missed = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < missed; i++ {
		h.Observe(float64(ms.PauseNs[(n-1-i)%uint32(len(ms.PauseNs))]) / 1e9)
	}
	lastNumGC = n

	Default.Help("probkb_build_info", "Build metadata; the value is always 1.")
	Default.Gauge("probkb_build_info", L("goversion", runtime.Version()), L("version", buildVersion())).Set(1)
}

// buildVersion extracts the main module version from the embedded build
// info ("(devel)" for plain `go build`, "unknown" when no info exists).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
