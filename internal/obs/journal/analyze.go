package journal

import (
	"sort"
	"strings"
)

// Analyzers over a read-back Run: the post-hoc workload analysis layer.
// Skew/straggler detection reproduces what Figure 6's scaling analysis
// needs (a segment doing disproportionate work caps MPP speedup), and
// the convergence timeline gives inference results the trust evidence
// MCMC requires.

// SkewThreshold is the imbalance ratio (max over mean) above which a
// per-operator segment distribution is flagged as skewed. A perfectly
// balanced operator scores 1.0; 1.5 means the busiest segment carries
// half again the average load.
const SkewThreshold = 1.5

// SkewRow is one distributed operator's per-segment balance sheet.
type SkewRow struct {
	Query     string `json:"query"`
	Partition int    `json:"partition"`
	Iteration int    `json:"iteration"`
	Label     string `json:"label"`
	SegRows   []int  `json:"seg_rows,omitempty"`
	// RowImbalance is max/mean over per-segment output rows; 0 when the
	// operator produced no rows.
	RowImbalance float64 `json:"row_imbalance"`
	// TimeImbalance is max/mean over per-segment task seconds; 0 when
	// per-segment times were not recorded.
	TimeImbalance float64 `json:"time_imbalance"`
	// Straggler is the index of the slowest segment (by task seconds,
	// falling back to rows), or -1 when indistinguishable.
	Straggler int `json:"straggler"`
	// Flagged reports whether either imbalance exceeds SkewThreshold.
	Flagged bool `json:"flagged"`
}

// Skew walks one captured plan and returns a balance row for every
// operator that recorded a per-segment breakdown.
func Skew(p QueryProfile) []SkewRow {
	var out []SkewRow
	skewWalk(p, p.Plan, &out)
	return out
}

func skewWalk(p QueryProfile, n PlanNode, out *[]SkewRow) {
	if len(n.SegRows) > 1 || len(n.SegSeconds) > 1 {
		row := SkewRow{
			Query:     p.Query,
			Partition: p.Partition,
			Iteration: p.Iteration,
			Label:     opKind(n.Label),
			SegRows:   n.SegRows,
			Straggler: -1,
		}
		row.RowImbalance = imbalance(intsToF64(n.SegRows))
		row.TimeImbalance = imbalance(n.SegSeconds)
		if i := argMax(n.SegSeconds); i >= 0 {
			row.Straggler = i
		} else if i := argMax(intsToF64(n.SegRows)); i >= 0 {
			row.Straggler = i
		}
		row.Flagged = row.RowImbalance > SkewThreshold || row.TimeImbalance > SkewThreshold
		*out = append(*out, row)
	}
	for _, k := range n.Children {
		skewWalk(p, k, out)
	}
}

// imbalance is max/mean of a non-negative series, or 0 when the series
// is empty or sums to zero.
func imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum <= 0 {
		return 0
	}
	return max / (sum / float64(len(xs)))
}

func argMax(xs []float64) int {
	best, bestAt := 0.0, -1
	for i, x := range xs {
		if x > best {
			best, bestAt = x, i
		}
	}
	return bestAt
}

func intsToF64(xs []int) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// OperatorCost aggregates one operator kind's self time and output rows
// across every captured plan.
type OperatorCost struct {
	Label   string  `json:"label"`
	Count   int     `json:"count"`
	Rows    int     `json:"rows"`
	Seconds float64 `json:"seconds"`
}

// PhaseTime is one pipeline phase's wall time from the run_end summary.
type PhaseTime struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// ConvergencePoint is one checkpoint on the R-hat/ESS trajectory.
type ConvergencePoint struct {
	Sweep         int     `json:"sweep"`
	Burnin        bool    `json:"burnin,omitempty"`
	Flips         int     `json:"flips"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	RHatMax       float64 `json:"rhat_max,omitempty"`
	ESSMin        float64 `json:"ess_min,omitempty"`
}

// RHatThreshold is the conventional convergence criterion.
const RHatThreshold = 1.1

// Convergence summarizes the Gibbs timeline: the trajectory, the first
// post-burn-in checkpoint whose worst R-hat crossed below the
// threshold, and the final per-atom diagnostics.
type Convergence struct {
	Timeline []ConvergencePoint `json:"timeline"`
	// SweepToThreshold / SecondsToThreshold locate the first checkpoint
	// with 0 < RHatMax <= RHatThreshold; -1 when never reached.
	SweepToThreshold   int             `json:"sweep_to_threshold"`
	SecondsToThreshold float64         `json:"seconds_to_threshold"`
	FinalRHatMax       float64         `json:"final_rhat_max"`
	FinalESSMin        float64         `json:"final_ess_min"`
	Tracked            []VarDiagnostic `json:"tracked,omitempty"`
}

// FaultSummary aggregates the injected faults and segment retries of a
// chaos run (an expand under an active mpp.FaultPlan).
type FaultSummary struct {
	// Injected counts injected faults by kind ("fail", "panic",
	// "straggle").
	Injected map[string]int `json:"injected"`
	// Retries is the total number of segment task re-executions.
	Retries int `json:"retries"`
	// BySegment counts faults per segment index.
	BySegment map[int]int `json:"by_segment,omitempty"`
}

// Total returns the total injected fault count.
func (f *FaultSummary) Total() int {
	n := 0
	for _, c := range f.Injected {
		n += c
	}
	return n
}

// Profile is the full analysis of one run.
type Profile struct {
	Header *Header `json:"header,omitempty"`
	// Phases is the load/ground/factor/infer wall-time breakdown.
	Phases     []PhaseTime `json:"phases,omitempty"`
	Iterations []Iteration `json:"iterations,omitempty"`
	// Operators is every operator kind sorted by total self time,
	// descending.
	Operators []OperatorCost `json:"operators,omitempty"`
	// Skew has one row per distributed operator occurrence, sorted by
	// worst imbalance descending; flagged rows lead.
	Skew []SkewRow `json:"skew,omitempty"`
	// Motions is sorted by bytes shipped, descending.
	Motions []Motion `json:"motions,omitempty"`
	Repairs []Repair `json:"repairs,omitempty"`
	// FaultInjection is non-nil when the run recorded injected faults or
	// retries (a chaos run).
	FaultInjection *FaultSummary `json:"fault_injection,omitempty"`
	Convergence    *Convergence  `json:"convergence,omitempty"`
	End            *RunEnd       `json:"end,omitempty"`
	// DroppedEvents surfaces the journal bound: nonzero means the
	// analysis below is built from a truncated record.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// Analyze runs every analyzer over a read-back journal.
func Analyze(run *Run) *Profile {
	p := &Profile{
		Header:     run.Header,
		Iterations: run.Iterations,
		Repairs:    run.Repairs,
		End:        run.End,
	}
	if run.End != nil {
		p.Phases = []PhaseTime{
			{Phase: "load", Seconds: run.End.LoadSeconds},
			{Phase: "ground", Seconds: run.End.GroundSeconds},
			{Phase: "factors", Seconds: run.End.FactorSeconds},
			{Phase: "infer", Seconds: run.End.InferSeconds},
		}
		p.DroppedEvents = run.End.DroppedEvents
	}

	// Per-operator aggregation across every captured plan.
	agg := map[string]*OperatorCost{}
	for _, prof := range run.Profiles {
		aggregateOps(prof.Plan, agg)
		p.Skew = append(p.Skew, Skew(prof)...)
	}
	for _, oc := range agg {
		p.Operators = append(p.Operators, *oc)
	}
	sort.Slice(p.Operators, func(a, b int) bool {
		if p.Operators[a].Seconds != p.Operators[b].Seconds {
			return p.Operators[a].Seconds > p.Operators[b].Seconds
		}
		return p.Operators[a].Label < p.Operators[b].Label
	})
	sort.SliceStable(p.Skew, func(a, b int) bool {
		return worstImbalance(p.Skew[a]) > worstImbalance(p.Skew[b])
	})

	p.Motions = append(p.Motions, run.Motions...)
	sort.SliceStable(p.Motions, func(a, b int) bool { return p.Motions[a].Bytes > p.Motions[b].Bytes })

	if len(run.Faults) > 0 || len(run.Retries) > 0 {
		fs := &FaultSummary{Injected: map[string]int{}, Retries: len(run.Retries)}
		for _, f := range run.Faults {
			fs.Injected[f.Kind]++
			if fs.BySegment == nil {
				fs.BySegment = map[int]int{}
			}
			fs.BySegment[f.Segment]++
		}
		p.FaultInjection = fs
	}

	if len(run.Checkpoints) > 0 {
		p.Convergence = analyzeConvergence(run.Checkpoints)
	}
	return p
}

func worstImbalance(r SkewRow) float64 {
	if r.TimeImbalance > r.RowImbalance {
		return r.TimeImbalance
	}
	return r.RowImbalance
}

func aggregateOps(n PlanNode, agg map[string]*OperatorCost) {
	label := opKind(n.Label)
	oc := agg[label]
	if oc == nil {
		oc = &OperatorCost{Label: label}
		agg[label] = oc
	}
	oc.Count++
	oc.Rows += n.Rows
	oc.Seconds += n.Seconds
	for _, k := range n.Children {
		aggregateOps(k, agg)
	}
}

func analyzeConvergence(cps []GibbsCheckpoint) *Convergence {
	c := &Convergence{SweepToThreshold: -1, SecondsToThreshold: -1}
	for _, cp := range cps {
		c.Timeline = append(c.Timeline, ConvergencePoint{
			Sweep:         cp.Sweep,
			Burnin:        cp.Burnin,
			Flips:         cp.Flips,
			Seconds:       cp.Seconds,
			SamplesPerSec: cp.SamplesPerSec,
			RHatMax:       cp.RHatMax,
			ESSMin:        cp.ESSMin,
		})
		if c.SweepToThreshold < 0 && !cp.Burnin && cp.RHatMax > 0 && cp.RHatMax <= RHatThreshold {
			c.SweepToThreshold = cp.Sweep
			c.SecondsToThreshold = cp.Seconds
		}
	}
	last := cps[len(cps)-1]
	c.FinalRHatMax = last.RHatMax
	c.FinalESSMin = last.ESSMin
	c.Tracked = last.Tracked
	return c
}

// opKind reduces an operator label to its bounded-cardinality kind, the
// same reduction engine.ObserveTree applies for metric labels.
func opKind(label string) string {
	if i := strings.IndexAny(label, "(["); i > 0 {
		label = label[:i]
	}
	if i := strings.Index(label, " on "); i > 0 {
		label = label[:i]
	}
	return strings.TrimSpace(label)
}
