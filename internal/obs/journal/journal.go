// Package journal records one knowledge-expansion run as a stream of
// typed JSONL events — the durable, post-hoc complement to the live
// registry and tracer of internal/obs. A run journal captures what the
// paper's evaluation sections reconstruct by hand: per-phase time
// breakdowns, per-partition query profiles with full operator trees
// (Figure 4), MPP motion volumes and per-segment skew (Figure 6), and
// the Gibbs convergence trajectory inference-quality claims rest on.
//
// Events append to a bounded in-memory ring and, optionally, a JSONL
// file; analyzers (analyze.go) and the `probkb report` subcommand read
// either back. The journal is deterministic modulo timing: all wall
// times live in dedicated fields that Canonicalize strips, so two runs
// with the same seed and config hash produce byte-identical canonical
// journals.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"probkb/internal/obs"
)

// Event types, in the order a run emits them. segment_fault and
// segment_retry interleave with query_profile events whenever a
// FaultPlan is active.
const (
	TypeRunStart         = "run_start"
	TypeIteration        = "iteration"
	TypeQueryProfile     = "query_profile"
	TypeMotion           = "motion"
	TypeConstraintRepair = "constraint_repair"
	TypeGibbsCheckpoint  = "gibbs_checkpoint"
	TypeSegmentFault     = "segment_fault"
	TypeSegmentRetry     = "segment_retry"
	TypeSnapshotWritten  = "snapshot_written"
	TypeWALReplayed      = "wal_replayed"
	TypeRunEnd           = "run_end"
	// TypeQueryAnalyzed and TypeSlowQuery come from the server's ad-hoc
	// SQL path rather than an expansion run; like faults, their presence
	// depends on external requests, so Canonicalize drops them.
	TypeQueryAnalyzed = "query_analyzed"
	TypeSlowQuery     = "slow_query"
	// TypeIncident is a watchdog-captured anomaly report (obs.Incident);
	// anomalies depend on load and wall time, so Canonicalize drops it.
	TypeIncident = "incident"
	// TypeQueryLocal records a point query answered by the local
	// grounding path. The answer is a deterministic function of the
	// evidence, the query, and the seed, so Canonicalize keeps it
	// (stripping only the timing field).
	TypeQueryLocal = "query_local"
	// TypeIngestBatch and TypeIngestRefresh come from the streaming
	// ingest pipeline: one event per absorbed batch and per marginal
	// refresh pass. Both payloads are deterministic for a fixed stream
	// and batch split (timing lives in "seconds" fields Canonicalize
	// strips), so Canonicalize keeps them.
	TypeIngestBatch   = "ingest_batch"
	TypeIngestRefresh = "ingest_refresh"
)

// Event is the JSONL envelope: one line per event.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// ElapsedS is seconds since the run started (a timing field;
	// Canonicalize zeroes it).
	ElapsedS float64         `json:"elapsed_s"`
	Data     json.RawMessage `json:"data"`
}

// Header is the run_start payload. Seed and ConfigHash make same-seed
// runs diffable: identical inputs yield identical canonical journals.
type Header struct {
	Engine     string `json:"engine"`
	Segments   int    `json:"segments,omitempty"`
	Seed       int64  `json:"seed"`
	ConfigHash string `json:"config_hash"`
	// Start is the wall-clock start time (RFC 3339); a timing field.
	Start string `json:"start,omitempty"`
}

// Iteration is one grounding closure iteration.
type Iteration struct {
	Phase     string  `json:"phase"` // "ground" or "extend"
	Iteration int     `json:"iteration"`
	NewFacts  int     `json:"new_facts"`
	Deleted   int     `json:"deleted,omitempty"`
	Queries   int     `json:"queries"`
	Seconds   float64 `json:"seconds"`
}

// PlanNode is one operator of a captured plan tree: a NodeStats snapshot
// plus children. SegRows/SegSeconds are nil on single-node plans.
type PlanNode struct {
	Label string `json:"label"`
	Rows  int    `json:"rows"`
	// EstRows is the optimizer's cardinality estimate (0 = the planner
	// recorded none); next to Rows it exposes per-operator estimation
	// error in journals the way ExplainAnalyze does live.
	EstRows    float64   `json:"est_rows,omitempty"`
	Seconds    float64   `json:"seconds"`
	Extra      string    `json:"extra,omitempty"`
	Bytes      int64     `json:"bytes,omitempty"` // materialized output bytes
	SegRows    []int     `json:"seg_rows,omitempty"`
	SegSeconds []float64 `json:"seg_seconds,omitempty"`
	MovedRows  int       `json:"moved_rows,omitempty"`
	MovedBytes int64     `json:"moved_bytes,omitempty"`
	// Retries counts segment-task re-executions under an active fault
	// plan; Canonicalize strips it (faultKeys) so faulted and fault-free
	// runs stay byte-comparable.
	Retries int `json:"retries,omitempty"`
	// Workers/Morsels mirror NodeStats: Morsels is a deterministic
	// function of the data, while Workers tracks the configured pool and
	// is stripped by Canonicalize (schedulingKeys).
	Workers  int        `json:"workers,omitempty"`
	Morsels  int        `json:"morsels,omitempty"`
	Children []PlanNode `json:"children,omitempty"`
}

// QueryProfile is one executed grounding query's full operator tree,
// labeled by query site (e.g. "ground-atoms"), MLN partition, and
// iteration.
type QueryProfile struct {
	Query     string   `json:"query"`
	Partition int      `json:"partition"`
	Iteration int      `json:"iteration"`
	Plan      PlanNode `json:"plan"`
}

// AnalyzedQuery is the query_analyzed payload: one ad-hoc SQL request
// the server executed with plan profiling, identified by the active-
// query registry's ID. The same shape backs slow_query events, which
// the slow-query log emits for requests over its threshold.
type AnalyzedQuery struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"` // "sql" or "dist-sql"
	Query   string   `json:"query"`
	Seconds float64  `json:"seconds"`
	Plan    PlanNode `json:"plan"`
}

// QueryLocal is one point query served by the local grounding path: the
// atom, the resolved bounds, the shape of the local computation, and
// the answer. Probability is nil when the marginal is NaN (unknown
// atom, underivable within bounds, or skipped inference) — json.Marshal
// rejects NaN, and Emit panics on a marshal failure.
type QueryLocal struct {
	Rel          string   `json:"rel"`
	X            string   `json:"x"`
	Y            string   `json:"y"`
	Depth        int      `json:"depth"`
	Radius       int      `json:"radius"`
	Found        bool     `json:"found"`
	Observed     bool     `json:"observed"`
	SeedFacts    int      `json:"seed_facts"`
	LocalFacts   int      `json:"local_facts"`
	LocalVars    int      `json:"local_vars"`
	LocalFactors int      `json:"local_factors"`
	Rules        int      `json:"rules"`
	Collected    int      `json:"collected"`
	Probability  *float64 `json:"probability"`
	Seconds      float64  `json:"seconds"`
}

// Motion is one motion operator's shipped volume, extracted from a
// profile so motion bottlenecks are queryable without walking trees.
type Motion struct {
	Kind      string `json:"kind"` // "redistribute" or "broadcast"
	Query     string `json:"query"`
	Partition int    `json:"partition"`
	Iteration int    `json:"iteration"`
	Rows      int    `json:"rows"`
	Bytes     int64  `json:"bytes"`
}

// Repair is one constraint-repair action (a Query 3 pass that found
// violations during grounding).
type Repair struct {
	Iteration  int `json:"iteration"`
	Violations int `json:"violations"`
	Deleted    int `json:"deleted"`
}

// VarDiagnostic is one tracked query atom's convergence state at a
// checkpoint.
type VarDiagnostic struct {
	Var    int     `json:"var"`
	FactID int32   `json:"fact_id"`
	Mean   float64 `json:"mean"`
	RHat   float64 `json:"rhat"`
	ESS    float64 `json:"ess"`
}

// GibbsCheckpoint is a periodic snapshot of the sampling run: mixing
// signals (flips), throughput, and — once enough post-burn-in samples
// exist — split-half R-hat and effective sample size over the tracked
// variables.
type GibbsCheckpoint struct {
	Sweep         int     `json:"sweep"`
	Burnin        bool    `json:"burnin,omitempty"`
	Vars          int     `json:"vars"`
	Flips         int     `json:"flips"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// RHatMax/ESSMin are zero while diagnostics have too few samples.
	RHatMax float64         `json:"rhat_max,omitempty"`
	ESSMin  float64         `json:"ess_min,omitempty"`
	Tracked []VarDiagnostic `json:"tracked,omitempty"`
}

// SegmentFault is one fault injected by the active mpp.FaultPlan into a
// segment task attempt. Fault events are emitted from concurrent
// per-segment goroutines, so their interleaving with other events is
// scheduling-dependent; Canonicalize drops them.
type SegmentFault struct {
	Task    int64  `json:"task"`
	Segment int    `json:"segment"`
	Attempt int    `json:"attempt"`
	Kind    string `json:"kind"` // "fail", "panic" or "straggle"
}

// SegmentRetry is one re-execution of a failed segment task attempt.
// Like SegmentFault, Canonicalize drops it.
type SegmentRetry struct {
	Task    int64  `json:"task"`
	Segment int    `json:"segment"`
	Attempt int    `json:"attempt"`
	Cause   string `json:"cause,omitempty"`
}

// SnapshotWritten is one durable checkpoint by the storage engine: the
// whole KB rewritten as a columnar snapshot and the WAL rotated to a
// fresh generation. The payload is a function of the KB state, so
// Canonicalize keeps the event (only Seconds is stripped) — persisted
// and replayed runs stay byte-diffable.
type SnapshotWritten struct {
	Gen     uint32  `json:"gen"`
	Bytes   int64   `json:"bytes"`
	Facts   int     `json:"facts"`
	Seconds float64 `json:"seconds"`
}

// WALReplayed is one recovery: a snapshot load plus the replay of its
// WAL generation's durable record prefix. Canonicalize keeps it, like
// SnapshotWritten.
type WALReplayed struct {
	Gen     uint32 `json:"gen"`
	Records int64  `json:"records"`
	// TruncatedBytes counts torn tail bytes dropped at the end of the
	// WAL (zero after a clean shutdown).
	TruncatedBytes int64   `json:"truncated_bytes,omitempty"`
	Facts          int     `json:"facts"`
	Seconds        float64 `json:"seconds"`
}

// IngestBatch is one absorbed streaming-ingest batch: stream position,
// what delta grounding did with it, and the marginal staleness it left
// behind. For a fixed fact stream and batch split the payload is a
// deterministic function of the inputs, so Canonicalize keeps it.
type IngestBatch struct {
	Batch        int     `json:"batch"`
	Facts        int     `json:"facts"`
	Added        int     `json:"added"`
	Derived      int     `json:"derived"`
	StaleBatches int     `json:"stale_batches"`
	Seconds      float64 `json:"seconds"`
}

// IngestRefresh is one marginal refresh pass paying down ingest
// staleness, keyed by the batch it ran after.
type IngestRefresh struct {
	Batch   int     `json:"batch"`
	Seconds float64 `json:"seconds"`
}

// RunEnd is the run_end payload: the expansion summary plus journal
// accounting.
type RunEnd struct {
	Iterations    int     `json:"iterations"`
	Converged     bool    `json:"converged"`
	BaseFacts     int     `json:"base_facts"`
	InferredFacts int     `json:"inferred_facts"`
	TotalFacts    int     `json:"total_facts"`
	Factors       int     `json:"factors,omitempty"`
	LoadSeconds   float64 `json:"load_seconds"`
	GroundSeconds float64 `json:"ground_seconds"`
	FactorSeconds float64 `json:"factor_seconds"`
	InferSeconds  float64 `json:"infer_seconds"`
	DroppedEvents int     `json:"dropped_events,omitempty"`
}

// DefaultMaxEvents bounds the journal: a run emitting more than this
// drops the excess (run_end is always kept) and records the drop count.
const DefaultMaxEvents = 4096

// Writer accumulates a run's events in memory and, when a sink is
// attached, appends each as one JSON line. All methods are safe on a
// nil receiver (no-ops), so instrumented code does not guard call
// sites, and safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	start   time.Time
	seq     int
	max     int
	events  []Event
	dropped int
	f       *os.File
	bw      *bufio.Writer
}

// New returns an in-memory journal writer.
func New() *Writer {
	return &Writer{start: time.Now(), max: DefaultMaxEvents}
}

// SinkTo attaches a JSONL file sink, truncating any existing file.
// Events emitted so far are written out first, so SinkTo may follow New
// at any point before the run starts emitting.
func (w *Writer) SinkTo(path string) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	enc := json.NewEncoder(w.bw)
	for _, ev := range w.events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Emit appends one event. The payload marshals into the event's Data;
// a payload that fails to marshal is a programming error and panics.
func (w *Writer) Emit(typ string, payload any) {
	if w == nil {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		panic(fmt.Sprintf("journal: marshaling %s payload: %v", typ, err))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.events) >= w.max && typ != TypeRunEnd {
		w.dropped++
		return
	}
	// Events the bound keeps also land on the flight-recorder timeline.
	obs.DefaultFlight.Note("journal", typ, "")
	w.seq++
	ev := Event{Seq: w.seq, Type: typ, ElapsedS: time.Since(w.start).Seconds(), Data: data}
	w.events = append(w.events, ev)
	if w.bw != nil {
		enc := json.NewEncoder(w.bw)
		if err := enc.Encode(ev); err != nil {
			// A full disk should not kill the run the journal observes;
			// detach the sink and keep the in-memory copy.
			w.bw = nil
		}
	}
}

// Events returns a copy of the in-memory event ring.
func (w *Writer) Events() []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Event(nil), w.events...)
}

// Dropped returns how many events the bound discarded.
func (w *Writer) Dropped() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Close flushes and closes the file sink, if any; the in-memory events
// stay readable. Close is idempotent.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.bw != nil {
		err = w.bw.Flush()
		w.bw = nil
	}
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}

// timingKeys are the payload fields that carry wall-clock measurements;
// Canonicalize removes them (recursively, so plan trees are covered) to
// make same-seed journals byte-comparable.
var timingKeys = map[string]bool{
	"seconds":         true,
	"seg_seconds":     true,
	"samples_per_sec": true,
	"start":           true,
	"load_seconds":    true,
	"ground_seconds":  true,
	"factor_seconds":  true,
	"infer_seconds":   true,
}

// schedulingKeys carry execution-resource choices (worker-pool sizes)
// that don't affect results; Canonicalize removes them so runs at
// different worker counts produce identical canonical journals. Morsel
// counts are NOT here: they depend only on the data and stay.
var schedulingKeys = map[string]bool{
	"workers": true,
}

// nondeterministicTypes are event types whose presence or ordering
// depends on goroutine scheduling or on the active fault plan, not on
// the run's inputs; Canonicalize drops them (and renumbers Seq) so a
// faulted run's canonical journal is byte-identical to a fault-free
// run's.
var nondeterministicTypes = map[string]bool{
	TypeSegmentFault:  true,
	TypeSegmentRetry:  true,
	TypeQueryAnalyzed: true,
	TypeSlowQuery:     true,
	TypeIncident:      true,
}

// faultKeys carry fault-plan artifacts inside otherwise-deterministic
// payloads (retry counts on plan nodes); Canonicalize removes them so a
// faulted run's canonical journal matches a fault-free run's.
var faultKeys = map[string]bool{
	"retries": true,
}

// Canonicalize strips every timing field from the events — the envelope
// elapsed_s and the recursive timingKeys of each payload — drops
// scheduling-dependent event types (injected faults, retries), renumbers
// Seq over what remains, and re-marshals payloads with sorted keys. Two
// runs of the same KB with the same seed and config produce identical
// canonical journals — with or without an active FaultPlan; the
// determinism tests diff exactly this.
func Canonicalize(events []Event) []Event {
	out := make([]Event, 0, len(events))
	seq := 0
	for _, ev := range events {
		if nondeterministicTypes[ev.Type] {
			continue
		}
		var v any
		if err := json.Unmarshal(ev.Data, &v); err == nil {
			stripTiming(v)
			if data, err := json.Marshal(v); err == nil {
				ev.Data = data
			}
		}
		ev.ElapsedS = 0
		seq++
		ev.Seq = seq
		out = append(out, ev)
	}
	return out
}

func stripTiming(v any) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if timingKeys[k] || schedulingKeys[k] || faultKeys[k] {
				delete(t, k)
				continue
			}
			stripTiming(child)
		}
	case []any:
		for _, child := range t {
			stripTiming(child)
		}
	}
}
