package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Run is a journal read back into typed form: the raw event stream plus
// every payload decoded into its own slice, in emission order.
type Run struct {
	Header      *Header
	Iterations  []Iteration
	Profiles    []QueryProfile
	Motions     []Motion
	Repairs     []Repair
	Checkpoints []GibbsCheckpoint
	Faults      []SegmentFault
	Retries     []SegmentRetry
	End         *RunEnd
	Events      []Event
}

// FromEvents decodes an in-memory event stream into a Run. Unknown
// event types pass through in Events untouched (forward compatibility);
// a known type with a malformed payload is an error.
func FromEvents(events []Event) (*Run, error) {
	run := &Run{Events: events}
	for _, ev := range events {
		if err := run.decode(ev); err != nil {
			return nil, fmt.Errorf("journal: event %d (%s): %w", ev.Seq, ev.Type, err)
		}
	}
	return run, nil
}

func (run *Run) decode(ev Event) error {
	switch ev.Type {
	case TypeRunStart:
		var h Header
		if err := json.Unmarshal(ev.Data, &h); err != nil {
			return err
		}
		run.Header = &h
	case TypeIteration:
		var it Iteration
		if err := json.Unmarshal(ev.Data, &it); err != nil {
			return err
		}
		run.Iterations = append(run.Iterations, it)
	case TypeQueryProfile:
		var p QueryProfile
		if err := json.Unmarshal(ev.Data, &p); err != nil {
			return err
		}
		run.Profiles = append(run.Profiles, p)
	case TypeMotion:
		var m Motion
		if err := json.Unmarshal(ev.Data, &m); err != nil {
			return err
		}
		run.Motions = append(run.Motions, m)
	case TypeConstraintRepair:
		var r Repair
		if err := json.Unmarshal(ev.Data, &r); err != nil {
			return err
		}
		run.Repairs = append(run.Repairs, r)
	case TypeGibbsCheckpoint:
		var c GibbsCheckpoint
		if err := json.Unmarshal(ev.Data, &c); err != nil {
			return err
		}
		run.Checkpoints = append(run.Checkpoints, c)
	case TypeSegmentFault:
		var f SegmentFault
		if err := json.Unmarshal(ev.Data, &f); err != nil {
			return err
		}
		run.Faults = append(run.Faults, f)
	case TypeSegmentRetry:
		var r SegmentRetry
		if err := json.Unmarshal(ev.Data, &r); err != nil {
			return err
		}
		run.Retries = append(run.Retries, r)
	case TypeRunEnd:
		var e RunEnd
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			return err
		}
		run.End = &e
	}
	return nil
}

// Read parses a JSONL journal stream.
func Read(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEvents(events)
}

// ReadFile parses a JSONL journal file.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}
