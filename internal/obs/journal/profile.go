package journal

import (
	"strings"

	"probkb/internal/engine"
)

// Capture snapshots a just-run plan tree — single-node or distributed —
// into the journal's PlanNode form. Like engine.ObserveTree it is
// generic over the plan shape, so this package never imports mpp.
func Capture[N engine.PlanLike[N]](root N) PlanNode {
	st := root.Stats()
	pn := PlanNode{
		Label:      root.Label(),
		Rows:       st.Rows,
		EstRows:    st.EstRows,
		Seconds:    st.Elapsed.Seconds(),
		Extra:      st.Extra,
		Bytes:      st.OutBytes,
		SegRows:    append([]int(nil), st.SegRows...),
		SegSeconds: append([]float64(nil), st.SegSeconds...),
		MovedRows:  st.MovedRows,
		MovedBytes: st.MovedBytes,
		Workers:    st.Workers,
		Morsels:    st.Morsels,
		Retries:    st.Retries,
	}
	for _, k := range root.Children() {
		pn.Children = append(pn.Children, Capture(k))
	}
	return pn
}

// EmitProfile records one executed query's plan tree and, for each
// motion operator in it, a standalone motion event carrying its shipped
// volume.
func (w *Writer) EmitProfile(p QueryProfile) {
	if w == nil {
		return
	}
	w.Emit(TypeQueryProfile, p)
	emitMotions(w, p, p.Plan)
}

func emitMotions(w *Writer, p QueryProfile, n PlanNode) {
	if kind := motionKind(n.Label); kind != "" {
		w.Emit(TypeMotion, Motion{
			Kind:      kind,
			Query:     p.Query,
			Partition: p.Partition,
			Iteration: p.Iteration,
			Rows:      n.MovedRows,
			Bytes:     n.MovedBytes,
		})
	}
	for _, k := range n.Children {
		emitMotions(w, p, k)
	}
}

// motionKind classifies a plan-node label as a data-moving motion, or
// "" for everything else (Gather collects results rather than reshaping
// placement, so it is not flagged as a shipping motion).
func motionKind(label string) string {
	switch {
	case strings.HasPrefix(label, "Redistribute Motion"):
		return "redistribute"
	case strings.HasPrefix(label, "Broadcast Motion"):
		return "broadcast"
	default:
		return ""
	}
}
