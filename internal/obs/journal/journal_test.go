package journal

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// emitSampleRun writes one event of every type, the shape a real
// expansion produces.
func emitSampleRun(w *Writer) {
	w.Emit(TypeRunStart, Header{Engine: "ProbKB-p", Segments: 2, Seed: 7, ConfigHash: "deadbeef00000000", Start: "2026-01-01T00:00:00Z"})
	w.Emit(TypeIteration, Iteration{Phase: "ground", Iteration: 1, NewFacts: 40, Deleted: 3, Queries: 6, Seconds: 0.01})
	w.EmitProfile(QueryProfile{
		Query: "mpp-atoms", Partition: 3, Iteration: 1,
		Plan: PlanNode{
			Label: "Gather Motion", Rows: 40, Seconds: 0.004,
			Children: []PlanNode{{
				Label: "Redistribute Motion (hash x)", Rows: 40, Seconds: 0.002,
				SegRows: []int{39, 1}, SegSeconds: []float64{0.0019, 0.0001},
				MovedRows: 22, MovedBytes: 616,
				Children: []PlanNode{{
					Label: "Hash Join on x", Rows: 40, Seconds: 0.001,
					SegRows: []int{20, 20}, SegSeconds: []float64{0.0005, 0.0005},
				}},
			}},
		},
	})
	w.Emit(TypeConstraintRepair, Repair{Iteration: 1, Violations: 2, Deleted: 3})
	w.Emit(TypeGibbsCheckpoint, GibbsCheckpoint{Sweep: 50, Burnin: true, Vars: 100, Flips: 31, Seconds: 0.002, SamplesPerSec: 2.5e6})
	w.Emit(TypeGibbsCheckpoint, GibbsCheckpoint{
		Sweep: 100, Vars: 100, Flips: 29, Seconds: 0.004, SamplesPerSec: 2.5e6,
		RHatMax: 1.05, ESSMin: 40,
		Tracked: []VarDiagnostic{{Var: 0, FactID: 17, Mean: 0.66, RHat: 1.05, ESS: 40}},
	})
	w.Emit(TypeRunEnd, RunEnd{
		Iterations: 1, Converged: true, BaseFacts: 100, InferredFacts: 40, TotalFacts: 140,
		Factors: 80, LoadSeconds: 0.001, GroundSeconds: 0.01, FactorSeconds: 0.002, InferSeconds: 0.004,
	})
}

// TestRoundTrip writes a full run to a JSONL file and checks every
// payload survives the file round trip without loss.
func TestRoundTrip(t *testing.T) {
	w := New()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := w.SinkTo(path); err != nil {
		t.Fatal(err)
	}
	emitSampleRun(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	run, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := FromEvents(w.Events())
	if err != nil {
		t.Fatal(err)
	}

	if run.Header == nil || run.Header.Seed != 7 || run.Header.ConfigHash != "deadbeef00000000" {
		t.Fatalf("header = %+v", run.Header)
	}
	if len(run.Iterations) != 1 || run.Iterations[0].NewFacts != 40 {
		t.Fatalf("iterations = %+v", run.Iterations)
	}
	if len(run.Profiles) != 1 {
		t.Fatalf("profiles = %d", len(run.Profiles))
	}
	motion := run.Profiles[0].Plan.Children[0]
	if !reflect.DeepEqual(motion.SegRows, []int{39, 1}) || motion.MovedBytes != 616 {
		t.Fatalf("motion node = %+v", motion)
	}
	// EmitProfile extracts motion nodes into standalone motion events.
	if len(run.Motions) != 1 || run.Motions[0].Kind != "redistribute" || run.Motions[0].Rows != 22 {
		t.Fatalf("motions = %+v", run.Motions)
	}
	if len(run.Repairs) != 1 || run.Repairs[0].Deleted != 3 {
		t.Fatalf("repairs = %+v", run.Repairs)
	}
	if len(run.Checkpoints) != 2 || run.Checkpoints[1].RHatMax != 1.05 || len(run.Checkpoints[1].Tracked) != 1 {
		t.Fatalf("checkpoints = %+v", run.Checkpoints)
	}
	if run.End == nil || run.End.TotalFacts != 140 {
		t.Fatalf("end = %+v", run.End)
	}

	// The file and in-memory views decode identically.
	if !reflect.DeepEqual(run.Events, mem.Events) {
		t.Fatal("file round trip altered the event stream")
	}
}

func TestNilWriterIsSafe(t *testing.T) {
	var w *Writer
	w.Emit(TypeIteration, Iteration{Iteration: 1})
	w.EmitProfile(QueryProfile{})
	if w.Events() != nil || w.Dropped() != 0 || w.Close() != nil {
		t.Fatal("nil writer must no-op")
	}
}

// TestBound checks the ring drops excess events but always keeps
// run_end, and counts the drops.
func TestBound(t *testing.T) {
	w := New()
	w.max = 4
	for i := 0; i < 10; i++ {
		w.Emit(TypeIteration, Iteration{Iteration: i})
	}
	w.Emit(TypeRunEnd, RunEnd{Iterations: 10, DroppedEvents: w.Dropped()})

	events := w.Events()
	if len(events) != 5 {
		t.Fatalf("kept %d events, want 4 + run_end", len(events))
	}
	if got := events[len(events)-1].Type; got != TypeRunEnd {
		t.Fatalf("last event = %s, want run_end", got)
	}
	if w.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", w.Dropped())
	}
}

// TestSkewDetector feeds a synthetic skewed hash distribution and checks
// the imbalance is computed and flagged, with the straggler identified.
func TestSkewDetector(t *testing.T) {
	p := QueryProfile{
		Query: "mpp-atoms", Partition: 1, Iteration: 2,
		Plan: PlanNode{
			Label:      "Hash Join on x",
			Rows:       80,
			SegRows:    []int{50, 10, 10, 10}, // max/mean = 50/20 = 2.5
			SegSeconds: []float64{0.010, 0.002, 0.002, 0.002},
		},
	}
	rows := Skew(p)
	if len(rows) != 1 {
		t.Fatalf("skew rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if !r.Flagged {
		t.Fatalf("2.5x imbalance not flagged: %+v", r)
	}
	if got := r.RowImbalance; got < 2.49 || got > 2.51 {
		t.Fatalf("row imbalance = %g, want 2.5", got)
	}
	if r.Straggler != 0 {
		t.Fatalf("straggler = %d, want segment 0", r.Straggler)
	}
	if r.Label != "Hash Join" {
		t.Fatalf("label = %q, want operator kind", r.Label)
	}

	// A balanced operator is reported but not flagged.
	p.Plan.SegRows = []int{20, 20, 20, 20}
	p.Plan.SegSeconds = []float64{0.002, 0.002, 0.002, 0.002}
	if r := Skew(p)[0]; r.Flagged || r.RowImbalance != 1 {
		t.Fatalf("balanced operator flagged: %+v", r)
	}

	// Single-segment plans produce no skew rows at all.
	p.Plan.SegRows = []int{80}
	p.Plan.SegSeconds = []float64{0.002}
	if rows := Skew(p); len(rows) != 0 {
		t.Fatalf("single-segment plan produced skew rows: %+v", rows)
	}
}

// TestAnalyzeAndRender runs the full pipeline over a synthetic journal
// and checks the report carries every section.
func TestAnalyzeAndRender(t *testing.T) {
	w := New()
	emitSampleRun(w)
	run, err := FromEvents(w.Events())
	if err != nil {
		t.Fatal(err)
	}
	prof := Analyze(run)

	if len(prof.Phases) != 4 {
		t.Fatalf("phases = %+v", prof.Phases)
	}
	if len(prof.Operators) == 0 || prof.Operators[0].Label == "" {
		t.Fatalf("operators = %+v", prof.Operators)
	}
	// The sample plan has two multi-segment operators; the skewed motion
	// (39/1 rows -> imbalance 1.95) must lead and be flagged.
	if len(prof.Skew) != 2 || !prof.Skew[0].Flagged || prof.Skew[1].Flagged {
		t.Fatalf("skew = %+v", prof.Skew)
	}
	if prof.Convergence == nil || prof.Convergence.SweepToThreshold != 100 {
		t.Fatalf("convergence = %+v", prof.Convergence)
	}
	if prof.Convergence.FinalESSMin != 40 {
		t.Fatalf("final ESS = %g", prof.Convergence.FinalESSMin)
	}

	text := Render(prof, ReportOptions{})
	for _, section := range []string{
		"Phase breakdown", "Grounding iterations", "Top operators",
		"Per-segment skew", "Motion volumes", "Constraint repairs",
		"Gibbs convergence timeline", "Summary",
		"deadbeef00000000", // config hash in the header line
	} {
		if !strings.Contains(text, section) {
			t.Fatalf("report missing %q:\n%s", section, text)
		}
	}
}

// TestCanonicalize checks timing fields are stripped recursively while
// run-determined fields survive, so same-seed journals diff clean.
func TestCanonicalize(t *testing.T) {
	w := New()
	emitSampleRun(w)
	canon := Canonicalize(w.Events())

	all := ""
	for _, ev := range canon {
		if ev.ElapsedS != 0 {
			t.Fatalf("elapsed_s survived canonicalization: %+v", ev)
		}
		all += string(ev.Data) + "\n"
	}
	for _, timing := range []string{"seconds", "samples_per_sec", "start", "seg_seconds"} {
		if strings.Contains(all, `"`+timing+`"`) {
			t.Fatalf("timing key %q survived canonicalization:\n%s", timing, all)
		}
	}
	for _, keep := range []string{"seg_rows", "moved_bytes", "config_hash", "new_facts", "rhat_max"} {
		if !strings.Contains(all, `"`+keep+`"`) {
			t.Fatalf("run-determined key %q was stripped:\n%s", keep, all)
		}
	}
}

// TestCanonicalizeQueryLocal: a point-query answer is a deterministic
// function of the evidence, the query, and the seed, so Canonicalize
// keeps the event — only its wall-clock field goes.
func TestCanonicalizeQueryLocal(t *testing.T) {
	w := New()
	p := 0.42
	w.Emit(TypeQueryLocal, QueryLocal{
		Rel: "located_in", X: "Brooklyn", Y: "New_York_City",
		Depth: 3, Radius: 4, Found: true,
		SeedFacts: 2, LocalFacts: 5, LocalVars: 3, LocalFactors: 4,
		Rules: 4, Collected: 500, Probability: &p, Seconds: 0.012,
	})
	canon := Canonicalize(w.Events())
	if len(canon) != 1 || canon[0].Type != TypeQueryLocal {
		t.Fatalf("canonicalized events = %+v, want the query_local event kept", canon)
	}
	data := string(canon[0].Data)
	for _, keep := range []string{"probability", "local_facts", "seed_facts", "collected"} {
		if !strings.Contains(data, `"`+keep+`"`) {
			t.Fatalf("run-determined key %q was stripped:\n%s", keep, data)
		}
	}
	if strings.Contains(data, `"seconds"`) {
		t.Fatalf("timing key survived canonicalization:\n%s", data)
	}
}
