package journal

import (
	"fmt"
	"sort"
	"strings"
)

// ReportOptions controls Render.
type ReportOptions struct {
	// TopOperators bounds the slowest-operators table; 0 means 10.
	TopOperators int
	// TopSkew bounds the skew table; 0 means 10.
	TopSkew int
}

func (o ReportOptions) withDefaults() ReportOptions {
	if o.TopOperators == 0 {
		o.TopOperators = 10
	}
	if o.TopSkew == 0 {
		o.TopSkew = 10
	}
	return o
}

// Render formats a run profile as the human-readable report `probkb
// report` prints: run header, per-phase time breakdown, grounding
// iterations, top-k slowest operators, per-segment skew table, motion
// volumes, constraint repairs, and the Gibbs convergence timeline.
func Render(p *Profile, opts ReportOptions) string {
	opts = opts.withDefaults()
	var b strings.Builder

	fmt.Fprintf(&b, "Run report\n==========\n")
	if h := p.Header; h != nil {
		fmt.Fprintf(&b, "engine=%s", h.Engine)
		if h.Segments > 0 {
			fmt.Fprintf(&b, " segments=%d", h.Segments)
		}
		fmt.Fprintf(&b, " seed=%d config=%s", h.Seed, h.ConfigHash)
		if h.Start != "" {
			fmt.Fprintf(&b, " start=%s", h.Start)
		}
		b.WriteByte('\n')
	}
	if p.DroppedEvents > 0 {
		fmt.Fprintf(&b, "WARNING: journal bound dropped %d events; this report is built from a truncated record\n", p.DroppedEvents)
	}

	fmt.Fprintf(&b, "\nPhase breakdown\n---------------\n")
	if len(p.Phases) == 0 {
		b.WriteString("(no run_end event; run may have aborted)\n")
	}
	var total float64
	for _, ph := range p.Phases {
		total += ph.Seconds
	}
	for _, ph := range p.Phases {
		pct := 0.0
		if total > 0 {
			pct = 100 * ph.Seconds / total
		}
		fmt.Fprintf(&b, "%-8s %10.4fs  %5.1f%%\n", ph.Phase, ph.Seconds, pct)
	}
	if total > 0 {
		fmt.Fprintf(&b, "%-8s %10.4fs\n", "total", total)
	}

	if len(p.Iterations) > 0 {
		fmt.Fprintf(&b, "\nGrounding iterations\n--------------------\n")
		fmt.Fprintf(&b, "%4s %10s %8s %8s %10s\n", "iter", "new_facts", "deleted", "queries", "seconds")
		for _, it := range p.Iterations {
			fmt.Fprintf(&b, "%4d %10d %8d %8d %10.4f\n",
				it.Iteration, it.NewFacts, it.Deleted, it.Queries, it.Seconds)
		}
	}

	fmt.Fprintf(&b, "\nTop operators\n-------------\n")
	if len(p.Operators) == 0 {
		b.WriteString("(no query profiles recorded)\n")
	} else {
		fmt.Fprintf(&b, "%-22s %6s %12s %12s\n", "operator", "count", "rows", "seconds")
		for i, oc := range p.Operators {
			if i >= opts.TopOperators {
				fmt.Fprintf(&b, "... %d more\n", len(p.Operators)-i)
				break
			}
			fmt.Fprintf(&b, "%-22s %6d %12d %12.6f\n", oc.Label, oc.Count, oc.Rows, oc.Seconds)
		}
	}

	fmt.Fprintf(&b, "\nPer-segment skew\n----------------\n")
	if len(p.Skew) == 0 {
		b.WriteString("(no distributed operators; skew analysis needs an MPP run)\n")
	} else {
		flagged := 0
		for _, r := range p.Skew {
			if r.Flagged {
				flagged++
			}
		}
		fmt.Fprintf(&b, "threshold=%.2f  flagged %d of %d operator runs\n", SkewThreshold, flagged, len(p.Skew))
		fmt.Fprintf(&b, "%-14s %4s %4s %8s %8s %9s %5s  %s\n",
			"operator", "part", "iter", "row_imb", "time_imb", "straggler", "flag", "seg_rows")
		for i, r := range p.Skew {
			if i >= opts.TopSkew {
				fmt.Fprintf(&b, "... %d more\n", len(p.Skew)-i)
				break
			}
			flag := ""
			if r.Flagged {
				flag = "SKEW"
			}
			fmt.Fprintf(&b, "%-14s %4d %4d %8.2f %8.2f %9d %5s  %v\n",
				r.Label, r.Partition, r.Iteration, r.RowImbalance, r.TimeImbalance, r.Straggler, flag, r.SegRows)
		}
	}

	if len(p.Motions) > 0 {
		fmt.Fprintf(&b, "\nMotion volumes\n--------------\n")
		fmt.Fprintf(&b, "%-14s %-14s %4s %4s %10s %12s\n", "motion", "query", "part", "iter", "rows", "bytes")
		for i, m := range p.Motions {
			if i >= opts.TopOperators {
				fmt.Fprintf(&b, "... %d more\n", len(p.Motions)-i)
				break
			}
			fmt.Fprintf(&b, "%-14s %-14s %4d %4d %10d %12d\n",
				m.Kind, m.Query, m.Partition, m.Iteration, m.Rows, m.Bytes)
		}
	}

	if len(p.Repairs) > 0 {
		fmt.Fprintf(&b, "\nConstraint repairs\n------------------\n")
		fmt.Fprintf(&b, "%4s %12s %8s\n", "iter", "violations", "deleted")
		for _, r := range p.Repairs {
			fmt.Fprintf(&b, "%4d %12d %8d\n", r.Iteration, r.Violations, r.Deleted)
		}
	}

	if fi := p.FaultInjection; fi != nil {
		fmt.Fprintf(&b, "\nFault injection\n---------------\n")
		fmt.Fprintf(&b, "injected faults: %d (fail=%d panic=%d straggle=%d)  segment retries: %d\n",
			fi.Total(), fi.Injected["fail"], fi.Injected["panic"], fi.Injected["straggle"], fi.Retries)
		if len(fi.BySegment) > 0 {
			segs := make([]int, 0, len(fi.BySegment))
			for s := range fi.BySegment {
				segs = append(segs, s)
			}
			sort.Ints(segs)
			b.WriteString("per-segment faults:")
			for _, s := range segs {
				fmt.Fprintf(&b, " seg%d=%d", s, fi.BySegment[s])
			}
			b.WriteByte('\n')
		}
	}

	fmt.Fprintf(&b, "\nGibbs convergence timeline\n--------------------------\n")
	if c := p.Convergence; c == nil {
		b.WriteString("(no Gibbs checkpoints; run with inference enabled)\n")
	} else {
		fmt.Fprintf(&b, "%6s %7s %8s %10s %12s %8s %10s\n",
			"sweep", "burnin", "flips", "seconds", "samples/s", "rhat", "ess_min")
		for _, cp := range c.Timeline {
			rhat, ess := "-", "-"
			if cp.RHatMax > 0 {
				rhat = fmt.Sprintf("%.4f", cp.RHatMax)
			}
			if cp.ESSMin > 0 {
				ess = fmt.Sprintf("%.1f", cp.ESSMin)
			}
			burn := ""
			if cp.Burnin {
				burn = "burnin"
			}
			fmt.Fprintf(&b, "%6d %7s %8d %10.4f %12.0f %8s %10s\n",
				cp.Sweep, burn, cp.Flips, cp.Seconds, cp.SamplesPerSec, rhat, ess)
		}
		if c.SweepToThreshold >= 0 {
			fmt.Fprintf(&b, "converged: R-hat <= %.2f at sweep %d (%.4fs)\n",
				RHatThreshold, c.SweepToThreshold, c.SecondsToThreshold)
		} else {
			fmt.Fprintf(&b, "not converged: R-hat never reached %.2f (final %.4f)\n",
				RHatThreshold, c.FinalRHatMax)
		}
		if len(c.Tracked) > 0 {
			fmt.Fprintf(&b, "\ntracked atoms (final checkpoint)\n")
			fmt.Fprintf(&b, "%8s %8s %8s %10s\n", "fact_id", "mean", "rhat", "ess")
			for _, v := range c.Tracked {
				fmt.Fprintf(&b, "%8d %8.4f %8.4f %10.1f\n", v.FactID, v.Mean, v.RHat, v.ESS)
			}
		}
	}

	if e := p.End; e != nil {
		fmt.Fprintf(&b, "\nSummary\n-------\n")
		fmt.Fprintf(&b, "iterations=%d converged=%v base_facts=%d inferred=%d total=%d factors=%d\n",
			e.Iterations, e.Converged, e.BaseFacts, e.InferredFacts, e.TotalFacts, e.Factors)
	}
	return b.String()
}
