package store

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"probkb/internal/engine"
	"probkb/internal/kb"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenKB is the fixture the layout golden pins: deterministic, and
// small enough that the rendered layout stays reviewable, but touching
// every engine table the snapshot carries (facts, rules, constraints,
// members, taxonomy).
func goldenKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	person := k.Classes.Intern("Person")
	place := k.Classes.Intern("Place")
	if err := k.DeclareSubclass(person, place); err != nil {
		t.Fatal(err)
	}
	k.InternFact("born_in", "ada", "Person", "london", "Place", 0.9)
	k.InternFact("live_in", "grace", "Person", "nyc", "Place", 0.75)
	c, err := k.ParseRule("1.10 live_in(x:Person, y:Place) :- born_in(x:Person, y:Place)")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddRule(c); err != nil {
		t.Fatal(err)
	}
	rel, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: rel, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

// renderLayout walks a snapshot byte stream frame by frame and renders
// its physical layout: offsets, lengths, CRCs, frame kinds, and the
// decoded header fields. Pinning this text pins the on-disk format —
// any byte-level change to the encoding shows up as a golden diff.
func renderLayout(t *testing.T, data []byte) string {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "magic    %q (%d bytes)\n", data[:8], 8)
	off, idx := 8, 0
	for off < len(data) {
		payload, next, err := nextFrame(data, off)
		if err != nil {
			t.Fatalf("frame %d at offset %d: %v", idx, off, err)
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		c := &cursor{data: payload}
		switch kind := c.u8(); kind {
		case frameTableHeader:
			name := c.name()
			nrows := c.u32()
			ncols := c.u16()
			fmt.Fprintf(&b, "frame %-2d off %-5d len %-5d crc %08x  table-header %q rows=%d cols=%d\n",
				idx, off, len(payload), crc, name, nrows, ncols)
			for i := 0; i < int(ncols); i++ {
				cn := c.name()
				ct := engine.ColType(c.u8())
				fmt.Fprintf(&b, "         col %d: %-8s %v\n", i, cn, ct)
			}
		case frameColumn:
			ci := c.u16()
			ct := engine.ColType(c.u8())
			count := c.u32()
			fmt.Fprintf(&b, "frame %-2d off %-5d len %-5d crc %08x  column idx=%d type=%v count=%d\n",
				idx, off, len(payload), crc, ci, ct, count)
		default:
			t.Fatalf("frame %d: unknown kind %d", idx, kind)
		}
		if c.err != nil {
			t.Fatalf("frame %d: %v", idx, c.err)
		}
		off = next
		idx++
	}
	fmt.Fprintf(&b, "total    %d bytes, %d frames\n", len(data), idx)
	return b.String()
}

// TestSnapshotGoldenLayout pins the snapshot header and block layout of
// the fixture KB byte for byte (offsets, lengths, per-frame CRCs). A
// failure means the on-disk format changed: if that is deliberate, bump
// the magic's version suffix and refresh with `go test -run
// TestSnapshotGoldenLayout ./internal/store -update`.
func TestSnapshotGoldenLayout(t *testing.T) {
	tables, err := KBTables(goldenKB(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	got := renderLayout(t, EncodeTables(tables))

	golden := filepath.Join("testdata", "snapshot_layout.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (refresh with -update)", err)
	}
	if got != string(want) {
		t.Errorf("snapshot layout changed (refresh with -update if deliberate)\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The layout is only trustworthy if the bytes still decode to the
	// same KB: round-trip the fixture for good measure.
	k2, gen, err := KBFromTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || len(k2.Facts) != 2 {
		t.Fatalf("fixture round trip: gen=%d facts=%d", gen, len(k2.Facts))
	}
}
