package store

import "bytes"

// Opaque-blob framing: the same length+CRC frame the KB snapshot and
// WAL use, exposed for other subsystems that keep their own logs in the
// store's format — the MPP layer's per-segment WALs append framed blobs
// whose payloads it defines itself.

// EncodeBlob wraps one opaque payload in a frame ready to append to a
// log file.
func EncodeBlob(payload []byte) []byte {
	var buf bytes.Buffer
	appendFrame(&buf, payload)
	return buf.Bytes()
}

// DecodeBlobs splits a log of framed blobs, tolerating a torn tail like
// DecodeWAL: it returns the payloads of the longest valid prefix and
// the byte offset where that prefix ends. Framing damage past valid
// frames is not an error — that is what a crash leaves behind; payload
// semantics are the caller's to check.
func DecodeBlobs(data []byte) (payloads [][]byte, validLen int, err error) {
	off := 0
	for off < len(data) {
		payload, next, ferr := nextFrame(data, off)
		if ferr != nil {
			return payloads, off, nil
		}
		payloads = append(payloads, payload)
		off = next
	}
	return payloads, off, nil
}

// WriteAtomic atomically replaces dir/name with data using the snapshot
// protocol: write dir/name.tmp, fsync, rename over dir/name, fsync the
// directory. At every crash point the directory holds either the
// complete old file or the complete new one.
func WriteAtomic(fs FS, dir, name string, data []byte) error {
	return writeFileAtomic(fs, dir, name+".tmp", name, data)
}
