package store

import (
	"fmt"
	"math"

	"probkb/internal/engine"
	"probkb/internal/kb"
)

// A KB snapshot is one columnar file holding the whole KB as named
// engine tables, in this fixed order:
//
//	meta       (key:text, val:int)       format version, WAL generation
//	entities   (name:text)               dictionaries in ID order
//	classes    (name:text)
//	relnames   (name:text)
//	relations  (name:int, domain:int, range:int)
//	members    (class:int, entity:int)
//	facts      (rel, x, xclass, y, yclass:int, w:float)
//	rules      (shape, head, b0, b1, c1, c2, c3:int, w:float)
//	constraints(rel, ctype, degree:int)
//	taxonomy   (sub:int, super:int)
//
// Decode replays them in the same order the KB binary format does —
// members before taxonomy — so every slice, dictionary ID, and map
// entry of the reconstructed KB matches the source exactly; the
// round-trip is bit-identical under kb.WriteBinary.

// Snapshot file names inside a store directory.
const (
	snapFile    = "snapshot.pks"
	snapTmpFile = "snapshot.pks.tmp"
)

// metaFormatVersion is the logical KB-snapshot layout version carried
// in the meta table (the byte-level framing version lives in the magic).
const metaFormatVersion = 1

var (
	metaSchema   = engine.NewSchema(engine.C("key", engine.String), engine.C("val", engine.Int32))
	nameSchema   = engine.NewSchema(engine.C("name", engine.String))
	relSchema    = engine.NewSchema(engine.C("name", engine.Int32), engine.C("domain", engine.Int32), engine.C("range", engine.Int32))
	memberSchema = engine.NewSchema(engine.C("class", engine.Int32), engine.C("entity", engine.Int32))
	factSchema   = engine.NewSchema(
		engine.C("rel", engine.Int32), engine.C("x", engine.Int32), engine.C("xclass", engine.Int32),
		engine.C("y", engine.Int32), engine.C("yclass", engine.Int32), engine.C("w", engine.Float64))
	ruleSchema = engine.NewSchema(
		engine.C("shape", engine.Int32), engine.C("head", engine.Int32),
		engine.C("b0", engine.Int32), engine.C("b1", engine.Int32),
		engine.C("c1", engine.Int32), engine.C("c2", engine.Int32), engine.C("c3", engine.Int32),
		engine.C("w", engine.Float64))
	constraintSchema = engine.NewSchema(engine.C("rel", engine.Int32), engine.C("ctype", engine.Int32), engine.C("degree", engine.Int32))
	taxonomySchema   = engine.NewSchema(engine.C("sub", engine.Int32), engine.C("super", engine.Int32))
)

func dictTable(name string, d *kb.Dict) *engine.Table {
	names := d.Names()
	vals := make([]string, len(names))
	copy(vals, names)
	return engine.TableFromColumns(name, nameSchema, vals)
}

// KBTables renders the KB as the snapshot's named tables. The result is
// a pure function of the KB — same KB, same tables, same bytes.
func KBTables(k *kb.KB, walGen uint32) ([]*engine.Table, error) {
	meta := engine.TableFromColumns("meta", metaSchema,
		[]string{"format", "wal_gen"}, []int32{metaFormatVersion, int32(walGen)})

	rels := engine.NewTable("relations", relSchema)
	rels.Reserve(len(k.Relations))
	for _, r := range k.Relations {
		rels.AppendRow(r.ID, r.Domain, r.Range)
	}
	members := engine.NewTable("members", memberSchema)
	members.Reserve(len(k.Members))
	for _, m := range k.Members {
		members.AppendRow(m.Class, m.Entity)
	}
	facts := engine.NewTable("facts", factSchema)
	facts.Reserve(len(k.Facts))
	for _, f := range k.Facts {
		facts.AppendRow(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.W)
	}
	rules := engine.NewTable("rules", ruleSchema)
	rules.Reserve(len(k.Rules))
	for _, c := range k.Rules {
		part, err := c.Partition()
		if err != nil {
			return nil, fmt.Errorf("store: rule does not partition: %w", err)
		}
		var b1 int32
		if len(c.Body) == 2 {
			b1 = c.Body[1].Rel
		}
		rules.AppendRow(int32(part), c.Head.Rel, c.Body[0].Rel, b1,
			c.Class[0], c.Class[1], c.Class[2], c.Weight)
	}
	constraints := engine.NewTable("constraints", constraintSchema)
	constraints.Reserve(len(k.Constraints))
	for _, c := range k.Constraints {
		constraints.AppendRow(c.Rel, int32(c.Type), int32(c.Degree))
	}
	taxonomy := engine.NewTable("taxonomy", taxonomySchema)
	for _, e := range k.SubclassEdges() {
		taxonomy.AppendRow(e.Sub, e.Super)
	}
	return []*engine.Table{
		meta,
		dictTable("entities", k.Entities),
		dictTable("classes", k.Classes),
		dictTable("relnames", k.RelDict),
		rels, members, facts, rules, constraints, taxonomy,
	}, nil
}

// snapshotLayout is the expected table name/schema sequence; decode
// rejects anything else so a truncated-but-CRC-valid file (impossible
// today, cheap to check anyway) or a reordered one fails loudly.
var snapshotLayout = []struct {
	name   string
	schema engine.Schema
}{
	{"meta", metaSchema},
	{"entities", nameSchema},
	{"classes", nameSchema},
	{"relnames", nameSchema},
	{"relations", relSchema},
	{"members", memberSchema},
	{"facts", factSchema},
	{"rules", ruleSchema},
	{"constraints", constraintSchema},
	{"taxonomy", taxonomySchema},
}

func sameSchema(a, b engine.Schema) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}

// KBFromTables reconstructs a KB from snapshot tables, returning the
// KB and the WAL generation recorded in meta. Every ID is range-checked
// against the dictionaries before use — the panicking fast paths
// (Dict.Name, mln.Shape) must be unreachable from corrupt input.
func KBFromTables(tables []*engine.Table) (*kb.KB, uint32, error) {
	if len(tables) != len(snapshotLayout) {
		return nil, 0, fmt.Errorf("store: snapshot has %d tables, want %d", len(tables), len(snapshotLayout))
	}
	for i, want := range snapshotLayout {
		if tables[i].Name() != want.name {
			return nil, 0, fmt.Errorf("store: snapshot table %d is %q, want %q", i, tables[i].Name(), want.name)
		}
		if !sameSchema(tables[i].Schema(), want.schema) {
			return nil, 0, fmt.Errorf("store: snapshot table %s has schema %v", want.name, tables[i].Schema())
		}
	}
	meta, entities, classes, relnames := tables[0], tables[1], tables[2], tables[3]
	rels, members, facts, rules, constraints, taxonomy :=
		tables[4], tables[5], tables[6], tables[7], tables[8], tables[9]

	var walGen uint32
	format := int32(-1)
	for r, key := range meta.StringCol(0) {
		switch v := meta.Int32Col(1)[r]; key {
		case "format":
			format = v
		case "wal_gen":
			if v < 0 {
				return nil, 0, fmt.Errorf("store: negative wal generation %d", v)
			}
			walGen = uint32(v)
		}
	}
	if format != metaFormatVersion {
		return nil, 0, fmt.Errorf("store: snapshot format %d, this build reads %d", format, metaFormatVersion)
	}

	k := kb.New()
	intern := func(d *kb.Dict, t *engine.Table) error {
		for _, name := range t.StringCol(0) {
			d.Intern(name)
		}
		if d.Len() != t.NumRows() {
			return fmt.Errorf("store: dictionary %s has duplicate symbols", t.Name())
		}
		return nil
	}
	if err := intern(k.Entities, entities); err != nil {
		return nil, 0, err
	}
	if err := intern(k.Classes, classes); err != nil {
		return nil, 0, err
	}
	if err := intern(k.RelDict, relnames); err != nil {
		return nil, 0, err
	}
	ne, nc, nr := int32(k.Entities.Len()), int32(k.Classes.Len()), int32(k.RelDict.Len())
	inRange := func(id, n int32) bool { return id >= 0 && id < n }

	for r := 0; r < rels.NumRows(); r++ {
		name, dom, rng := rels.Int32Col(0)[r], rels.Int32Col(1)[r], rels.Int32Col(2)[r]
		if !inRange(name, nr) || !inRange(dom, nc) || !inRange(rng, nc) {
			return nil, 0, fmt.Errorf("store: relation row %d references unknown symbols", r)
		}
		k.AddRelation(k.RelDict.Name(name), dom, rng)
	}
	// Members replay before taxonomy: with no subclass edges declared
	// yet nothing propagates, so the Members slice comes out exactly as
	// recorded; the later taxonomy replay only re-adds members that are
	// already present (the source KB upheld that closure).
	for r := 0; r < members.NumRows(); r++ {
		cls, ent := members.Int32Col(0)[r], members.Int32Col(1)[r]
		if !inRange(cls, nc) || !inRange(ent, ne) {
			return nil, 0, fmt.Errorf("store: member row %d references unknown symbols", r)
		}
		k.AddMember(cls, ent)
	}
	for r := 0; r < facts.NumRows(); r++ {
		f := kb.Fact{
			Rel: facts.Int32Col(0)[r],
			X:   facts.Int32Col(1)[r], XClass: facts.Int32Col(2)[r],
			Y: facts.Int32Col(3)[r], YClass: facts.Int32Col(4)[r],
			W: facts.Float64Col(5)[r],
		}
		if !inRange(f.Rel, nr) || !inRange(f.X, ne) || !inRange(f.Y, ne) ||
			!inRange(f.XClass, nc) || !inRange(f.YClass, nc) {
			return nil, 0, fmt.Errorf("store: fact row %d references unknown symbols", r)
		}
		if _, added := k.AddFact(f); !added {
			return nil, 0, fmt.Errorf("store: fact row %d duplicates an earlier key", r)
		}
	}
	for r := 0; r < rules.NumRows(); r++ {
		head, b0, b1 := rules.Int32Col(1)[r], rules.Int32Col(2)[r], rules.Int32Col(3)[r]
		c1, c2, c3 := rules.Int32Col(4)[r], rules.Int32Col(5)[r], rules.Int32Col(6)[r]
		if !inRange(head, nr) || !inRange(b0, nr) || !inRange(b1, nr) ||
			!inRange(c1, nc) || !inRange(c2, nc) || !inRange(c3, nc) {
			return nil, 0, fmt.Errorf("store: rule row %d references unknown symbols", r)
		}
		clause, err := kb.ClauseFromShape(int(rules.Int32Col(0)[r]), head, b0, b1, c1, c2, c3,
			rules.Float64Col(7)[r])
		if err != nil {
			return nil, 0, err
		}
		if err := k.AddRule(clause); err != nil {
			return nil, 0, err
		}
	}
	for r := 0; r < constraints.NumRows(); r++ {
		rel := constraints.Int32Col(0)[r]
		if !inRange(rel, nr) {
			return nil, 0, fmt.Errorf("store: constraint row %d references unknown relation", r)
		}
		ct := constraints.Int32Col(1)[r]
		deg := constraints.Int32Col(2)[r]
		if deg < 1 || deg > math.MaxInt32-1 {
			return nil, 0, fmt.Errorf("store: constraint row %d degree %d out of range", r, deg)
		}
		if err := k.AddConstraint(kb.Constraint{Rel: rel, Type: int(ct), Degree: int(deg)}); err != nil {
			return nil, 0, err
		}
	}
	for r := 0; r < taxonomy.NumRows(); r++ {
		sub, super := taxonomy.Int32Col(0)[r], taxonomy.Int32Col(1)[r]
		if !inRange(sub, nc) || !inRange(super, nc) {
			return nil, 0, fmt.Errorf("store: taxonomy row %d references unknown classes", r)
		}
		if err := k.DeclareSubclass(sub, super); err != nil {
			return nil, 0, err
		}
	}
	return k, walGen, nil
}

// WriteSnapshot atomically replaces dir's snapshot file with the given
// KB at the given WAL generation and returns the encoded size. The
// write order — temp file, fsync, rename, fsync(dir) — guarantees the
// directory always holds either the complete old snapshot or the
// complete new one, never a torn hybrid.
func WriteSnapshot(fs FS, dir string, k *kb.KB, walGen uint32) (int64, error) {
	tables, err := KBTables(k, walGen)
	if err != nil {
		return 0, err
	}
	data := EncodeTables(tables)
	if err := writeFileAtomic(fs, dir, snapTmpFile, snapFile, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// writeFileAtomic writes data to dir/tmpName, fsyncs it, renames it
// over dir/name, and fsyncs the directory.
func writeFileAtomic(fs FS, dir, tmpName, name string, data []byte) error {
	tmp := join(dir, tmpName)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, join(dir, name)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// Exists reports whether dir already holds a store snapshot — the
// marker callers check before Create to avoid clobbering a live store.
func Exists(fs FS, dir string) (bool, error) {
	return fs.Exists(join(dir, snapFile))
}

// ReadSnapshot reads dir's snapshot file into a KB plus its WAL
// generation.
func ReadSnapshot(fs FS, dir string) (*kb.KB, uint32, error) {
	data, err := fs.ReadFile(join(dir, snapFile))
	if err != nil {
		return nil, 0, err
	}
	tables, err := DecodeTables(data)
	if err != nil {
		return nil, 0, err
	}
	return KBFromTables(tables)
}

// join is filepath.Join for store paths; the FS abstraction always
// runs on slash-free relative segments, so plain concatenation keeps
// MemFS paths platform-independent.
func join(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}
