package store

import (
	"testing"

	"probkb/internal/engine"
	"probkb/internal/kb"
)

// fuzzSeedKB is a tiny deterministic KB whose encodings seed both fuzz
// corpora with structurally valid inputs — coverage-guided mutation
// then explores the format from inside, not just from random bytes.
func fuzzSeedKB() *kb.KB {
	k := kb.New()
	k.InternFact("born_in", "ada", "Person", "london", "Place", 0.9)
	k.InternFact("live_in", "ada", "Person", "paris", "Place", 0.5)
	if c, err := k.ParseRule("1.10 live_in(x:Person, y:Place) :- born_in(x:Person, y:Place)"); err == nil {
		k.AddRule(c)
	}
	return k
}

// FuzzSnapshotDecode pins the snapshot decoder's core contract: on
// arbitrary bytes it returns an error or a valid table set — it never
// panics, and whatever decodes must re-encode and decode again (no
// half-valid states escape).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotMagic[:])
	valid := EncodeTables(mustKBTables(f, fuzzSeedKB()))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])      // torn tail
	f.Add(append(valid, 0xff, 0xff)) // trailing garbage
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0x40 // flip a bit mid-stream
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tables, err := DecodeTables(data)
		if err != nil {
			return
		}
		// A decoded table set must survive the full round trip: encode is
		// total on valid tables, and re-decoding yields the same shape.
		again, err := DecodeTables(EncodeTables(tables))
		if err != nil {
			t.Fatalf("re-decoding a decoded snapshot failed: %v", err)
		}
		if len(again) != len(tables) {
			t.Fatalf("round trip changed table count: %d vs %d", len(again), len(tables))
		}
		// If the tables happen to form a KB snapshot, reconstruction must
		// not panic either; errors are fine (arbitrary tables are not KBs).
		_, _, _ = KBFromTables(tables)
	})
}

// FuzzWALReplay pins the WAL decoder and replay path: arbitrary bytes
// either stop at a torn tail or decode to records, the reported valid
// length is consistent, and replaying whatever decodes never panics.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	rec := EncodeRecord(Record{Type: RecFacts, Facts: []FactRec{
		{Rel: "born_in", X: "ada", XClass: "Person", Y: "london", YClass: "Place", W: 0.9},
	}})
	del := EncodeRecord(Record{Type: RecDeletes, Facts: []FactRec{
		{Rel: "born_in", X: "ada", XClass: "Person", Y: "london", YClass: "Place"},
	}})
	marg := EncodeRecord(Record{Type: RecMarginals, Facts: []FactRec{
		{Rel: "born_in", X: "ada", XClass: "Person", Y: "london", YClass: "Place", W: 0.42},
	}})
	full := append(append(append([]byte{}, rec...), del...), marg...)
	f.Add(full)
	f.Add(full[:len(full)-5])                       // torn tail mid-record
	dup := append(append([]byte{}, rec...), rec...) // duplicated record
	f.Add(dup)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := DecodeWAL(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid length %d outside [0, %d]", validLen, len(data))
		}
		if err != nil {
			return
		}
		// The durable prefix must re-decode to the same record count —
		// truncation at validLen is what recovery does to the file.
		again, againLen, err := DecodeWAL(data[:validLen])
		if err != nil || againLen != validLen || len(again) != len(recs) {
			t.Fatalf("truncated prefix decodes differently: %d recs / %d bytes / %v", len(again), againLen, err)
		}
		// Replay must be panic-free on whatever decoded, and idempotent:
		// applying the stream twice ends in the same fact count.
		k := fuzzSeedKB()
		for _, r := range recs {
			if err := ApplyRecord(k, r); err != nil {
				t.Fatalf("applying decoded record: %v", err)
			}
		}
		n := len(k.Facts)
		for _, r := range recs {
			if err := ApplyRecord(k, r); err != nil {
				t.Fatalf("re-applying decoded record: %v", err)
			}
		}
		if len(k.Facts) != n {
			t.Fatalf("replay not idempotent: %d facts, then %d", n, len(k.Facts))
		}
	})
}

func mustKBTables(f *testing.F, k *kb.KB) []*engine.Table {
	tables, err := KBTables(k, 1)
	if err != nil {
		f.Fatal(err)
	}
	return tables
}
