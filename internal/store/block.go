package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"probkb/internal/engine"
)

// On-disk building block, shared by snapshot files and WAL records:
//
//	frame   := u32 payloadLen | u32 crc32(payload) | payload
//	payload := u8 kind | body          (little-endian throughout)
//
// A snapshot file is the 8-byte magic followed by frames; a WAL file is
// frames only. Every frame is independently checksummed, so torn writes
// and bit flips are detected at the frame where they happen and never
// propagate: the decoder returns an error (snapshot) or stops at the
// last valid prefix (WAL), but must never panic on arbitrary input —
// FuzzSnapshotDecode and FuzzWALReplay pin exactly that.
//
// Snapshot frames encode named engine tables as typed column blocks:
//
//	kind=frameTableHeader: u16 nameLen | name | u32 nrows | u16 ncols |
//	                       ncols × (u16 nameLen | name | u8 colType)
//	kind=frameColumn:      u16 colIdx | u8 colType | u32 count | data
//
// where data is count × 4 bytes (Int32), count × 8 bytes (Float64 bit
// patterns, so NaN payloads round-trip), or count × (u32 len | bytes)
// for String columns. Columns follow their table header in schema
// order; a header with zero columns is legal (and unused).

// snapshotMagic identifies a columnar snapshot file; the trailing "01"
// is the format version. Bump it (and the golden files) deliberately.
var snapshotMagic = [8]byte{'P', 'K', 'S', 'N', 'A', 'P', '0', '1'}

// Frame kinds.
const (
	frameTableHeader = 1
	frameColumn      = 2
)

// Decoder sanity limits: corrupt length fields must fail fast instead
// of attempting huge allocations.
const (
	maxFrameLen  = 1 << 30 // one frame's payload
	maxRows      = 1 << 28 // rows per table / records per WAL batch
	maxCols      = 1 << 12 // columns per table
	maxSymbolLen = 1 << 24 // one string value
	maxNameLen   = 1 << 10 // table / column names
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in the length+CRC frame and appends it.
func appendFrame(buf *bytes.Buffer, payload []byte) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	buf.Write(hdr[:])
	buf.Write(payload)
}

// nextFrame reads one frame from data at off, verifying the checksum.
// It returns the payload and the offset past the frame. Any framing
// problem — short header, short payload, oversized length, checksum
// mismatch — is an error; the caller decides whether that means
// corruption (snapshot) or a torn tail (WAL).
func nextFrame(data []byte, off int) (payload []byte, next int, err error) {
	if len(data)-off < 8 {
		return nil, off, fmt.Errorf("store: short frame header at offset %d", off)
	}
	n := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n > maxFrameLen {
		return nil, off, fmt.Errorf("store: frame length %d implausible at offset %d", n, off)
	}
	body := data[off+8:]
	if uint32(len(body)) < n {
		return nil, off, fmt.Errorf("store: frame at offset %d truncated (%d of %d bytes)", off, len(body), n)
	}
	payload = body[:n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, off, fmt.Errorf("store: frame checksum mismatch at offset %d", off)
	}
	return payload, off + 8 + int(n), nil
}

// cursor is a bounds-checked little-endian reader over one payload.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("store: "+format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.data)-c.off < n {
		c.fail("payload truncated at byte %d (want %d more)", c.off, n)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// str reads a u32-length-prefixed string bounded by max.
func (c *cursor) str(max int) string {
	n := c.u32()
	if c.err != nil {
		return ""
	}
	if int(n) > max {
		c.fail("string length %d exceeds limit %d", n, max)
		return ""
	}
	b := c.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// name reads a u16-length-prefixed short name.
func (c *cursor) name() string {
	n := c.u16()
	if c.err != nil {
		return ""
	}
	if int(n) > maxNameLen {
		c.fail("name length %d exceeds limit %d", n, maxNameLen)
		return ""
	}
	b := c.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// done checks that the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.data) {
		return fmt.Errorf("store: payload has %d trailing bytes", len(c.data)-c.off)
	}
	return nil
}

// putName appends a u16-length-prefixed short name.
func putName(buf *bytes.Buffer, s string) {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	buf.Write(l[:])
	buf.WriteString(s)
}

// putStr appends a u32-length-prefixed string.
func putStr(buf *bytes.Buffer, s string) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	buf.Write(l[:])
	buf.WriteString(s)
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

// encodeTable appends one table's frames — a header frame then one
// column frame per schema column — to buf.
func encodeTable(buf *bytes.Buffer, t *engine.Table) {
	schema := t.Schema()
	var p bytes.Buffer
	p.WriteByte(frameTableHeader)
	putName(&p, t.Name())
	putU32(&p, uint32(t.NumRows()))
	var nc [2]byte
	binary.LittleEndian.PutUint16(nc[:], uint16(schema.NumCols()))
	p.Write(nc[:])
	for _, col := range schema.Cols {
		putName(&p, col.Name)
		p.WriteByte(byte(col.Type))
	}
	appendFrame(buf, p.Bytes())

	for i, col := range schema.Cols {
		p.Reset()
		p.WriteByte(frameColumn)
		var ci [2]byte
		binary.LittleEndian.PutUint16(ci[:], uint16(i))
		p.Write(ci[:])
		p.WriteByte(byte(col.Type))
		putU32(&p, uint32(t.NumRows()))
		switch col.Type {
		case engine.Int32:
			for _, v := range t.Int32Col(i) {
				putU32(&p, uint32(v))
			}
		case engine.Float64:
			for _, v := range t.Float64Col(i) {
				putU64(&p, math.Float64bits(v))
			}
		case engine.String:
			for _, v := range t.StringCol(i) {
				putStr(&p, v)
			}
		}
		appendFrame(buf, p.Bytes())
	}
}

// EncodeTables renders tables as one snapshot byte stream (magic plus
// table frames, in order). The encoding is a pure function of the
// tables, so equal inputs always produce equal bytes — what the golden
// layout test and the crash harness's canonical dumps rely on.
func EncodeTables(tables []*engine.Table) []byte {
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	for _, t := range tables {
		encodeTable(&buf, t)
	}
	return buf.Bytes()
}

// pendingTable is a table whose header has been decoded but whose
// column frames are still arriving.
type pendingTable struct {
	name  string
	nrows int
	cols  []engine.ColDef
	data  []any // one []int32/[]float64/[]string per decoded column
}

func (p *pendingTable) complete() bool { return len(p.data) == len(p.cols) }

func (p *pendingTable) materialize() *engine.Table {
	return engine.TableFromColumns(p.name, engine.NewSchema(p.cols...), p.data...)
}

// DecodeTables parses a snapshot byte stream back into tables. It is
// the strict counterpart of EncodeTables: every framing, checksum,
// type, or count inconsistency is an error, and arbitrary corrupt
// input must never panic (FuzzSnapshotDecode).
func DecodeTables(data []byte) ([]*engine.Table, error) {
	if len(data) < len(snapshotMagic) || !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic[:]) {
		return nil, fmt.Errorf("store: not a columnar snapshot (bad magic)")
	}
	off := len(snapshotMagic)
	var tables []*engine.Table
	var cur *pendingTable
	for off < len(data) {
		payload, next, err := nextFrame(data, off)
		if err != nil {
			return nil, err
		}
		off = next
		c := &cursor{data: payload}
		switch kind := c.u8(); kind {
		case frameTableHeader:
			if cur != nil && !cur.complete() {
				return nil, fmt.Errorf("store: table %s has %d of %d columns", cur.name, len(cur.data), len(cur.cols))
			}
			if cur != nil {
				tables = append(tables, cur.materialize())
			}
			name := c.name()
			nrows := c.u32()
			ncols := c.u16()
			if c.err == nil && nrows > maxRows {
				c.fail("row count %d implausible", nrows)
			}
			if c.err == nil && ncols > maxCols {
				c.fail("column count %d implausible", ncols)
			}
			cols := make([]engine.ColDef, 0, ncols)
			for i := 0; i < int(ncols) && c.err == nil; i++ {
				cn := c.name()
				ct := engine.ColType(c.u8())
				if c.err == nil && ct != engine.Int32 && ct != engine.Float64 && ct != engine.String {
					c.fail("table %s column %s: unknown type %d", name, cn, ct)
				}
				cols = append(cols, engine.C(cn, ct))
			}
			if err := c.done(); err != nil {
				return nil, err
			}
			cur = &pendingTable{name: name, nrows: int(nrows), cols: cols}
		case frameColumn:
			if cur == nil {
				return nil, fmt.Errorf("store: column frame before any table header")
			}
			idx := c.u16()
			ct := engine.ColType(c.u8())
			count := c.u32()
			if c.err != nil {
				return nil, c.err
			}
			if len(cur.data) >= len(cur.cols) {
				return nil, fmt.Errorf("store: table %s: extra column frame", cur.name)
			}
			if int(idx) != len(cur.data) {
				return nil, fmt.Errorf("store: table %s: column %d out of order (want %d)", cur.name, idx, len(cur.data))
			}
			def := cur.cols[len(cur.data)]
			if ct != def.Type {
				return nil, fmt.Errorf("store: table %s column %s: type %d does not match header %d", cur.name, def.Name, ct, def.Type)
			}
			if int(count) != cur.nrows {
				return nil, fmt.Errorf("store: table %s column %s: %d values for %d rows", cur.name, def.Name, count, cur.nrows)
			}
			vals, err := decodeColumn(def.Type, int(count), c)
			if err != nil {
				return nil, err
			}
			cur.data = append(cur.data, vals)
		default:
			return nil, fmt.Errorf("store: unknown frame kind %d", kind)
		}
	}
	if cur != nil && !cur.complete() {
		return nil, fmt.Errorf("store: table %s has %d of %d columns", cur.name, len(cur.data), len(cur.cols))
	}
	if cur != nil {
		tables = append(tables, cur.materialize())
	}
	return tables, nil
}

// decodeColumn reads count typed values, consuming the cursor exactly.
func decodeColumn(ct engine.ColType, count int, c *cursor) (any, error) {
	// Reject before allocating: a corrupt header can declare maxRows
	// rows while the frame holds a handful of bytes, and the cursor
	// would only notice after make() committed gigabytes.
	min := count * 4
	if ct == engine.Float64 {
		min = count * 8
	}
	if remaining := len(c.data) - c.off; remaining < min {
		return nil, fmt.Errorf("store: column frame holds %d bytes for %d values", remaining, count)
	}
	switch ct {
	case engine.Int32:
		vals := make([]int32, count)
		for i := range vals {
			vals[i] = int32(c.u32())
		}
		return vals, c.done()
	case engine.Float64:
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = c.f64()
		}
		return vals, c.done()
	default:
		vals := make([]string, count)
		for i := range vals {
			vals[i] = c.str(maxSymbolLen)
		}
		return vals, c.done()
	}
}
