package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"probkb/internal/kb"
)

// testKB builds a small KB exercising every persisted structure:
// dictionaries, relation signatures, a taxonomy edge with propagated
// members, facts (one with a NaN weight), rules, and constraints.
func testKB(t *testing.T) *kb.KB {
	t.Helper()
	k := kb.New()
	city := k.Classes.Intern("City")
	place := k.Classes.Intern("Place")
	if err := k.DeclareSubclass(city, place); err != nil {
		t.Fatal(err)
	}
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.InternFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.InternFact("live_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", math.NaN())
	for _, line := range []string{
		"1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)",
		"0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)",
	} {
		c, err := k.ParseRule(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	bornIn, _ := k.RelDict.Lookup("born_in")
	if err := k.AddConstraint(kb.Constraint{Rel: bornIn, Type: kb.TypeI, Degree: 1}); err != nil {
		t.Fatal(err)
	}
	return k
}

// dump renders the canonical byte dump recovery equality is judged by.
func dump(t *testing.T, k *kb.KB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	k := testKB(t)
	tables, err := KBTables(k, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeTables(tables)
	back, err := DecodeTables(data)
	if err != nil {
		t.Fatalf("DecodeTables: %v", err)
	}
	k2, gen, err := KBFromTables(back)
	if err != nil {
		t.Fatalf("KBFromTables: %v", err)
	}
	if gen != 7 {
		t.Fatalf("wal gen = %d, want 7", gen)
	}
	if !bytes.Equal(dump(t, k), dump(t, k2)) {
		t.Fatal("snapshot round trip is not bit-identical")
	}
	// Determinism: encoding the same KB twice yields the same bytes.
	tables2, _ := KBTables(k, 7)
	if !bytes.Equal(data, EncodeTables(tables2)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	k := testKB(t)
	tables, _ := KBTables(k, 1)
	data := EncodeTables(tables)
	// Flip one byte everywhere and expect either an error or (for the
	// few bytes CRC cannot see, i.e. none in this format) equality —
	// never a panic. Checked exhaustively by the fuzz target; here we
	// spot-check the interesting offsets.
	for _, off := range []int{0, 4, 8, 9, 12, 20, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if tabs, err := DecodeTables(mut); err == nil {
			if _, _, err := KBFromTables(tabs); err == nil {
				t.Fatalf("corruption at offset %d went undetected", off)
			}
		}
	}
	// Truncation at every prefix length must error, not panic.
	for n := 0; n < len(data); n += 7 {
		if tabs, err := DecodeTables(data[:n]); err == nil {
			if _, _, err := KBFromTables(tabs); err == nil {
				t.Fatalf("truncation to %d bytes went undetected", n)
			}
		}
	}
}

func TestStoreRecoveryEqualsMirror(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "kbstore")
	fs := OSFS{}
	s, err := Create(fs, dir, testKB(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts([]FactRec{
		{Rel: "live_in", X: "Ada", XClass: "Writer", Y: "London", YClass: "City", W: 0.5},
		{Rel: "born_in", X: "Ada", XClass: "Writer", Y: "London", YClass: "City", W: 0.7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMarginals([]FactRec{
		{Rel: "live_in", X: "Ruth_Gruber", XClass: "Writer", Y: "Brooklyn", YClass: "Place", W: 0.88},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDeletes([]FactRec{
		{Rel: "born_in", X: "Ruth_Gruber", XClass: "Writer", Y: "Brooklyn", YClass: "Place"},
	}); err != nil {
		t.Fatal(err)
	}
	want := dump(t, s.KB())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(fs, dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !bytes.Equal(want, dump(t, r.KB())) {
		t.Fatal("recovered KB differs from the mirror")
	}
	if r.Gen() != 1 || r.WALRecords() != 3 {
		t.Fatalf("gen=%d records=%d, want 1/3", r.Gen(), r.WALRecords())
	}
}

func TestStoreCheckpointRotatesWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "kbstore")
	fs := OSFS{}
	s, err := Create(fs, dir, testKB(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFacts([]FactRec{
		{Rel: "live_in", X: "Ada", XClass: "Writer", Y: "London", YClass: "City", W: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Gen() != 2 || s.WALRecords() != 0 {
		t.Fatalf("after checkpoint: gen=%d records=%d, want 2/0", s.Gen(), s.WALRecords())
	}
	if _, err := os.Stat(filepath.Join(dir, WALName(1))); !os.IsNotExist(err) {
		t.Fatalf("old WAL not retired: %v", err)
	}
	// Post-checkpoint appends land in the new generation.
	if err := s.AppendFacts([]FactRec{
		{Rel: "live_in", X: "Bob", XClass: "Writer", Y: "Paris", YClass: "City", W: 0.4},
	}); err != nil {
		t.Fatal(err)
	}
	want := dump(t, s.KB())
	s.Close()

	r, err := Open(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !bytes.Equal(want, dump(t, r.KB())) {
		t.Fatal("recovered KB differs after checkpoint")
	}
	if r.Gen() != 2 || r.WALRecords() != 1 {
		t.Fatalf("gen=%d records=%d, want 2/1", r.Gen(), r.WALRecords())
	}
}

func TestWALTornTailAndDuplicateTail(t *testing.T) {
	recA := EncodeRecord(Record{Type: RecFacts, Facts: []FactRec{
		{Rel: "r", X: "a", XClass: "C", Y: "b", YClass: "D", W: 0.5},
	}})
	recB := EncodeRecord(Record{Type: RecMarginals, Facts: []FactRec{
		{Rel: "r", X: "a", XClass: "C", Y: "b", YClass: "D", W: 0.9},
	}})
	wal := append(append([]byte(nil), recA...), recB...)

	// Every torn prefix decodes to exactly the records fully contained
	// in it, and validLen points at the last record boundary.
	for n := 0; n <= len(wal); n++ {
		recs, validLen, err := DecodeWAL(wal[:n])
		if err != nil {
			t.Fatalf("torn prefix %d: %v", n, err)
		}
		wantRecs, wantLen := 0, 0
		if n >= len(recA) {
			wantRecs, wantLen = 1, len(recA)
		}
		if n >= len(wal) {
			wantRecs, wantLen = 2, len(wal)
		}
		if len(recs) != wantRecs || validLen != wantLen {
			t.Fatalf("prefix %d: got %d recs valid %d, want %d/%d", n, len(recs), validLen, wantRecs, wantLen)
		}
	}

	// A duplicated tail replays idempotently.
	dup := append(append([]byte(nil), wal...), recB...)
	recs, _, err := DecodeWAL(dup)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := kb.New(), kb.New()
	for _, r := range recs {
		if err := ApplyRecord(k1, r); err != nil {
			t.Fatal(err)
		}
	}
	cleanRecs, _, _ := DecodeWAL(wal)
	for _, r := range cleanRecs {
		if err := ApplyRecord(k2, r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dump(t, k1), dump(t, k2)) {
		t.Fatal("duplicated WAL tail changed the replayed state")
	}
}
