package store

import (
	"bytes"
	"fmt"
	"math"

	"probkb/internal/kb"
)

// WAL record types. Each record is one frame (see block.go) whose
// payload is `u8 type | u32 count | count × fact`, with every fact a
// *symbolic* 5-tuple plus weight:
//
//	str rel | str x | str xclass | str y | str yclass | f64 w
//
// Records carry strings, not dictionary IDs, on purpose: replaying
// them in order interns symbols in exactly the order the live KB did,
// so recovered dictionaries assign identical IDs — which is what makes
// recovered KBs bit-identical under kb.WriteBinary and keeps MPP hash
// placement stable across restarts.
//
// Replay is idempotent record-by-record: inserts dedup on the fact
// key, deletes of absent keys no-op, and marginal updates assign (not
// merge) the weight. A crash that leaves a duplicated tail therefore
// recovers to the same state as a clean log.
const (
	// RecFacts inserts weighted facts (ground.Extend, initial load).
	RecFacts = 1
	// RecDeletes removes facts by key (quality constraint repairs);
	// the weight field is ignored.
	RecDeletes = 2
	// RecMarginals assigns inferred marginal probabilities as fact
	// weights.
	RecMarginals = 3
)

// FactRec is one symbolic fact in a WAL record.
type FactRec struct {
	Rel, X, XClass, Y, YClass string
	W                         float64
}

// FactRecOf renders fact f of k symbolically.
func FactRecOf(k *kb.KB, f kb.Fact) FactRec {
	return FactRec{
		Rel: k.RelDict.Name(f.Rel),
		X:   k.Entities.Name(f.X), XClass: k.Classes.Name(f.XClass),
		Y: k.Entities.Name(f.Y), YClass: k.Classes.Name(f.YClass),
		W: f.W,
	}
}

// Record is one decoded WAL record.
type Record struct {
	Type  byte
	Facts []FactRec
}

// EncodeRecord renders the record as one framed byte sequence ready to
// append to a WAL.
func EncodeRecord(rec Record) []byte {
	var p bytes.Buffer
	p.WriteByte(rec.Type)
	putU32(&p, uint32(len(rec.Facts)))
	for _, f := range rec.Facts {
		putStr(&p, f.Rel)
		putStr(&p, f.X)
		putStr(&p, f.XClass)
		putStr(&p, f.Y)
		putStr(&p, f.YClass)
		putU64(&p, math.Float64bits(f.W))
	}
	var buf bytes.Buffer
	appendFrame(&buf, p.Bytes())
	return buf.Bytes()
}

// decodeRecord parses one frame payload into a Record.
func decodeRecord(payload []byte) (Record, error) {
	c := &cursor{data: payload}
	rec := Record{Type: c.u8()}
	if c.err == nil && rec.Type != RecFacts && rec.Type != RecDeletes && rec.Type != RecMarginals {
		return Record{}, fmt.Errorf("store: unknown WAL record type %d", rec.Type)
	}
	count := c.u32()
	if c.err != nil {
		return Record{}, c.err
	}
	if count > maxRows {
		return Record{}, fmt.Errorf("store: WAL record count %d implausible", count)
	}
	// Each fact needs at least 5 length prefixes + the weight.
	if remaining := len(c.data) - c.off; remaining < int(count)*28 {
		return Record{}, fmt.Errorf("store: WAL record holds %d bytes for %d facts", remaining, count)
	}
	rec.Facts = make([]FactRec, count)
	for i := range rec.Facts {
		rec.Facts[i] = FactRec{
			Rel: c.str(maxSymbolLen),
			X:   c.str(maxSymbolLen), XClass: c.str(maxSymbolLen),
			Y: c.str(maxSymbolLen), YClass: c.str(maxSymbolLen),
			W: c.f64(),
		}
	}
	if err := c.done(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// ApplyRecord applies one WAL record to k. The same function runs at
// append time (on the store's live mirror) and at replay time, so
// recovery reproduces the mirror by construction.
func ApplyRecord(k *kb.KB, rec Record) error {
	switch rec.Type {
	case RecFacts:
		for _, f := range rec.Facts {
			k.InternFact(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.W)
		}
	case RecDeletes:
		keys := make(map[kb.Key]bool, len(rec.Facts))
		for _, f := range rec.Facts {
			if key, ok := lookupKey(k, f); ok {
				keys[key] = true
			}
		}
		k.DeleteFacts(keys)
	case RecMarginals:
		for _, f := range rec.Facts {
			if key, ok := lookupKey(k, f); ok {
				k.SetWeight(key, f.W)
			}
		}
	default:
		return fmt.Errorf("store: unknown WAL record type %d", rec.Type)
	}
	return nil
}

// lookupKey resolves a symbolic fact to its ID key; any unknown symbol
// means the fact cannot be present.
func lookupKey(k *kb.KB, f FactRec) (kb.Key, bool) {
	rel, ok1 := k.RelDict.Lookup(f.Rel)
	x, ok2 := k.Entities.Lookup(f.X)
	xc, ok3 := k.Classes.Lookup(f.XClass)
	y, ok4 := k.Entities.Lookup(f.Y)
	yc, ok5 := k.Classes.Lookup(f.YClass)
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		return kb.Key{}, false
	}
	return kb.Key{Rel: rel, X: x, XClass: xc, Y: y, YClass: yc}, true
}

// DecodeWAL parses a WAL byte stream, tolerating a torn tail: it
// returns the records of the longest valid prefix and the byte offset
// where that prefix ends (the truncation point recovery cuts the file
// back to). Framing damage past valid records is NOT an error — that
// is exactly what a crash leaves behind; only a CRC-valid frame whose
// payload fails to decode reports one, since no crash can produce it.
func DecodeWAL(data []byte) (recs []Record, validLen int, err error) {
	off := 0
	for off < len(data) {
		payload, next, ferr := nextFrame(data, off)
		if ferr != nil {
			return recs, off, nil // torn tail: durable prefix ends here
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, off, derr
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, off, nil
}

// WALName returns the WAL file name for a generation.
func WALName(gen uint32) string { return fmt.Sprintf("wal.%06d", gen) }
