// Package store is the durable storage engine under the knowledge base:
// a versioned columnar snapshot format for engine tables plus an
// append-only write-ahead log for post-snapshot mutations. Recovery is
// load-snapshot + replay-WAL and reproduces the in-memory KB
// bit-identically (the crash harness in store/crashtest proves the
// "bit" part against an oracle at every write offset).
//
// The paper's ProbKB inherits durability from PostgreSQL/Greenplum; a
// pure-Go reproduction has to supply the equivalent substrate itself,
// and — in the spirit of the differential test harness of
// internal/proptest — supply it *provably* crash-safe rather than
// plausibly so. Hence everything in this package runs through the FS
// interface below, which tests replace with a crash-injecting
// filesystem that kills the writer at arbitrary byte offsets.
package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the storage engine runs on. The
// production implementation is OSFS; crashtest.MemFS implements the
// same contract with injectable crash points (torn writes, dropped
// fsyncs, undurable renames).
//
// Durability contract, mirroring POSIX:
//
//   - bytes written to a File are durable only after Sync returns;
//   - namespace operations (Create, Rename, Remove) are durable only
//     after SyncDir on the containing directory returns;
//   - Rename atomically replaces the destination.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Append opens path for appending, creating it if absent.
	Append(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// Rename atomically renames oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file; removing a missing file is an error.
	Remove(path string) error
	// Truncate cuts the file to size bytes (recovery drops torn WAL
	// tails with it before appending resumes).
	Truncate(path string, size int64) error
	// Exists reports whether path exists.
	Exists(path string) (bool, error)
	// SyncDir makes preceding namespace operations in dir durable.
	SyncDir(dir string) error
}

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync makes all bytes written so far durable.
	Sync() error
	// Close closes the handle; it does not imply Sync.
	Close() error
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// Append implements FS.
func (OSFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Exists implements FS.
func (OSFS) Exists(path string) (bool, error) {
	_, err := os.Stat(path)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// SyncDir implements FS: fsync on the directory makes renames durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
