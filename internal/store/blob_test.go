package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestBlobFraming pins the exported blob helpers other subsystems build
// their logs on (the MPP layer's per-segment WALs): framing round-trip,
// torn-tail tolerance, and CRC rejection.
func TestBlobFraming(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	var log bytes.Buffer
	for _, p := range payloads {
		log.Write(EncodeBlob(p))
	}
	got, validLen, err := DecodeBlobs(log.Bytes())
	if err != nil || validLen != log.Len() || len(got) != len(payloads) {
		t.Fatalf("clean decode: %d payloads, %d/%d bytes, %v", len(got), validLen, log.Len(), err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d: %q != %q", i, got[i], payloads[i])
		}
	}

	// A torn tail stops the decode at the last complete frame.
	torn := log.Bytes()[:log.Len()-2]
	got, validLen, err = DecodeBlobs(torn)
	if err != nil || len(got) != 2 {
		t.Fatalf("torn decode: %d payloads, %v", len(got), err)
	}
	if want := len(EncodeBlob(payloads[0])) + len(EncodeBlob(payloads[1])); validLen != want {
		t.Fatalf("torn validLen %d, want %d", validLen, want)
	}

	// A flipped bit inside a frame is indistinguishable from a torn
	// tail at the framing layer: decode stops there without error.
	bad := append([]byte{}, log.Bytes()...)
	bad[8] ^= 0x01 // first byte of the first frame's payload
	got, validLen, err = DecodeBlobs(bad)
	if err != nil || len(got) != 0 || validLen != 0 {
		t.Fatalf("corrupt decode: %d payloads at %d, %v", len(got), validLen, err)
	}
}

// TestWriteAtomicReplaces drives the exported atomic-replace helper on
// the real filesystem: the target holds the new bytes, the temp file is
// gone.
func TestWriteAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	fs := OSFS{}
	if err := WriteAtomic(fs, dir, "data.bin", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(fs, dir, "data.bin", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "data.bin"))
	if err != nil || string(got) != "new" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "data.bin.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestStoreAccessors covers the small read-only surface end to end on
// the real filesystem: Exists before/after Create, Dir, SnapshotBytes,
// SetJournal tolerance of nil, and FactRecOf's symbolic rendering.
func TestStoreAccessors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "kb")
	fs := OSFS{}
	if ok, err := Exists(fs, dir); err != nil || ok {
		t.Fatalf("Exists on missing dir: %v %v", ok, err)
	}
	k := fuzzSeedKB()
	s, err := Create(fs, dir, k)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if ok, err := Exists(fs, dir); err != nil || !ok {
		t.Fatalf("Exists after Create: %v %v", ok, err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q", s.Dir())
	}
	if s.SnapshotBytes() <= 8 {
		t.Fatalf("SnapshotBytes() = %d", s.SnapshotBytes())
	}
	s.SetJournal(nil)
	if err := s.AppendFacts([]FactRec{{Rel: "born_in", X: "eve", XClass: "Person", Y: "oslo", YClass: "Place", W: 0.5}}); err != nil {
		t.Fatal(err)
	}

	rec := FactRecOf(s.KB(), s.KB().Facts[len(s.KB().Facts)-1])
	if rec.Rel != "born_in" || rec.X != "eve" || rec.YClass != "Place" || rec.W != 0.5 {
		t.Fatalf("FactRecOf = %+v", rec)
	}

	// Open exercises the OSFS read/truncate path with a torn tail: chop
	// the WAL mid-record and recovery must truncate it back.
	walPath := filepath.Join(dir, WALName(s.Gen()))
	s.Close()
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.WALRecords() != 0 {
		t.Fatalf("torn-only WAL replayed %d records", re.WALRecords())
	}
	if got, _ := os.ReadFile(walPath); len(got) != 0 {
		t.Fatalf("torn tail not truncated: %d bytes", len(got))
	}
}
