package store

import (
	"context"
	"fmt"
	"time"

	"probkb/internal/kb"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
)

func init() {
	obs.Default.Help("probkb_store_snapshot_bytes", "Size of the last columnar KB snapshot written, in bytes.")
	obs.Default.Help("probkb_store_wal_records_total", "WAL records appended by the storage engine.")
	obs.Default.Help("probkb_store_recovery_seconds", "Duration of the last snapshot-load + WAL-replay recovery.")
}

// Store is a durable KB: a columnar snapshot plus an append-only WAL
// for everything after it. It owns a live in-memory mirror that every
// append is applied to through the same ApplyRecord used at replay
// time, so Open always reconstructs exactly the mirror as of the last
// durable record — the crash harness checks that equality bit-wise.
//
// Generations make checkpoints crash-safe without truncating in place:
// the snapshot's meta table names the WAL generation it supersedes
// everything before, and a checkpoint atomically publishes snapshot
// gen+1 before retiring wal.<gen>. At every crash point the directory
// holds one complete snapshot and (at most) the WAL it points to.
//
// A Store is not safe for concurrent use; callers serialize, as the
// expansion pipeline already does for the KB itself.
type Store struct {
	fs        FS
	dir       string
	k         *kb.KB
	gen       uint32
	wal       File
	nrec      int64 // records in the current WAL generation
	snapBytes int64 // size of the last snapshot written

	jr *journal.Writer
}

// Create initializes dir (created if missing) with a snapshot of k at
// generation 1 and an empty WAL. The store clones k: later mutations
// of the caller's KB do not leak into the mirror.
func Create(fs FS, dir string, k *kb.KB) (*Store, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{fs: fs, dir: dir, k: k.Clone(), gen: 1}
	if err := s.writeSnapshotAndRotate(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// SetJournal attaches a run journal; snapshot_written and wal_replayed
// events are emitted to it from now on. A nil writer is fine.
func (s *Store) SetJournal(jr *journal.Writer) { s.jr = jr }

// KB returns the live mirror. Callers must treat it as read-only;
// mutations go through the Append methods.
func (s *Store) KB() *kb.KB { return s.k }

// Gen returns the current WAL generation.
func (s *Store) Gen() uint32 { return s.gen }

// WALRecords returns how many records the current generation holds.
func (s *Store) WALRecords() int64 { return s.nrec }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotBytes returns the size of the last snapshot this Store wrote
// (zero for a store opened and not yet checkpointed).
func (s *Store) SnapshotBytes() int64 { return s.snapBytes }

// Open recovers a Store from dir: load the snapshot, replay the
// durable prefix of its WAL generation, truncate any torn tail, and
// resume appending after it.
func Open(fs FS, dir string) (*Store, error) {
	return OpenContext(context.Background(), fs, dir, nil)
}

// OpenContext is Open with a tracing context and an optional journal
// for the wal_replayed event.
func OpenContext(ctx context.Context, fs FS, dir string, jr *journal.Writer) (*Store, error) {
	_, span := obs.StartSpan(ctx, "store.recover")
	defer span.End()
	start := time.Now()

	k, gen, err := ReadSnapshot(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	s := &Store{fs: fs, dir: dir, k: k, gen: gen, jr: jr}

	// A crash between "write tmp" and "rename" can leave the temp file
	// behind; it is dead weight either way.
	if ok, _ := fs.Exists(join(dir, snapTmpFile)); ok {
		_ = fs.Remove(join(dir, snapTmpFile))
		_ = fs.SyncDir(dir)
	}

	walPath := join(dir, WALName(gen))
	var truncated int64
	if ok, err := fs.Exists(walPath); err != nil {
		return nil, err
	} else if ok {
		data, err := fs.ReadFile(walPath)
		if err != nil {
			return nil, err
		}
		recs, validLen, err := DecodeWAL(data)
		if err != nil {
			return nil, fmt.Errorf("store: replaying %s: %w", WALName(gen), err)
		}
		for _, rec := range recs {
			if err := ApplyRecord(s.k, rec); err != nil {
				return nil, err
			}
		}
		s.nrec = int64(len(recs))
		if validLen < len(data) {
			truncated = int64(len(data) - validLen)
			if err := fs.Truncate(walPath, int64(validLen)); err != nil {
				return nil, err
			}
		}
	}
	// A missing WAL file is an empty one: a checkpoint crash can
	// publish the new snapshot before the new WAL file exists.
	wal, err := fs.Append(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = wal

	elapsed := obs.Since(start)
	span.SetAttr("gen", int(gen))
	span.SetAttr("records", int(s.nrec))
	obs.Default.Gauge("probkb_store_recovery_seconds").Set(elapsed)
	jr.Emit(journal.TypeWALReplayed, journal.WALReplayed{
		Gen: gen, Records: s.nrec, TruncatedBytes: truncated,
		Facts: len(s.k.Facts), Seconds: elapsed,
	})
	return s, nil
}

// AppendFacts logs weighted fact inserts. Durable when it returns.
func (s *Store) AppendFacts(facts []FactRec) error {
	return s.append(Record{Type: RecFacts, Facts: facts})
}

// AppendDeletes logs fact deletions by key.
func (s *Store) AppendDeletes(facts []FactRec) error {
	return s.append(Record{Type: RecDeletes, Facts: facts})
}

// AppendMarginals logs inferred marginal probabilities as weight
// assignments.
func (s *Store) AppendMarginals(facts []FactRec) error {
	return s.append(Record{Type: RecMarginals, Facts: facts})
}

func (s *Store) append(rec Record) error {
	if len(rec.Facts) == 0 {
		return nil
	}
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.wal.Write(EncodeRecord(rec)); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	// The record is durable; now mirror it. Apply cannot fail for
	// records we just built (only unknown types error).
	if err := ApplyRecord(s.k, rec); err != nil {
		return err
	}
	s.nrec++
	obs.Default.Counter("probkb_store_wal_records_total").Inc()
	return nil
}

// Checkpoint rewrites the snapshot at generation+1 and starts a fresh
// WAL, retiring the old one. Crash-safe at every step: until the
// rename lands the old snapshot+WAL pair stays authoritative, and
// after it the new snapshot ignores the old WAL entirely.
func (s *Store) Checkpoint() error {
	return s.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint with a tracing context.
func (s *Store) CheckpointContext(ctx context.Context) error {
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	_, span := obs.StartSpan(ctx, "store.snapshot")
	defer span.End()
	start := time.Now()

	if err := s.writeSnapshotAndRotate(s.wal); err != nil {
		return err
	}
	s.gen++
	s.nrec = 0

	elapsed := obs.Since(start)
	span.SetAttr("gen", int(s.gen))
	span.SetAttr("facts", len(s.k.Facts))
	s.jr.Emit(journal.TypeSnapshotWritten, journal.SnapshotWritten{
		Gen: s.gen, Bytes: s.snapBytes, Facts: len(s.k.Facts), Seconds: elapsed,
	})
	return nil
}

// writeSnapshotAndRotate publishes a snapshot and its fresh WAL: for
// Create (oldWAL nil) it writes generation s.gen; for Checkpoint it
// writes s.gen+1, swaps WAL handles, and retires the old file.
func (s *Store) writeSnapshotAndRotate(oldWAL File) error {
	newGen := s.gen
	if oldWAL != nil {
		newGen = s.gen + 1
	}
	n, err := WriteSnapshot(s.fs, s.dir, s.k, newGen)
	if err != nil {
		return err
	}
	obs.Default.Gauge("probkb_store_snapshot_bytes").Set(float64(n))
	s.snapBytes = n

	// The new snapshot is durable and names wal.<newGen>; create it
	// empty. If we crash before this lands, recovery treats the
	// missing file as empty — same state.
	w, err := s.fs.Create(join(s.dir, WALName(newGen)))
	if err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	if oldWAL != nil {
		oldWAL.Close()
		if ok, _ := s.fs.Exists(join(s.dir, WALName(s.gen))); ok {
			_ = s.fs.Remove(join(s.dir, WALName(s.gen)))
			_ = s.fs.SyncDir(s.dir)
		}
	}
	wal, err := s.fs.Append(join(s.dir, WALName(newGen)))
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// Close releases the WAL handle. The store stays recoverable: the last
// durable state is whatever the last synced append left.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
