// Package crashtest proves the storage engine crash-safe: an in-memory
// filesystem with injectable crash points (torn writes, lost unsynced
// bytes, interrupted renames) drives internal/store through every
// reachable failure offset, and a differential oracle asserts that
// recovery lands bit-identically on the last durable state — the same
// shrink-on-failure style as internal/proptest, aimed at durability
// instead of query plans.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"probkb/internal/store"
)

// ErrCrashed is returned by every MemFS operation after the injected
// crash fires, modeling a dead process: nothing else reaches the disk.
var ErrCrashed = errors.New("crashtest: simulated crash")

// CrashMode selects what survives of bytes written but never fsynced.
type CrashMode int

const (
	// KeepTorn keeps every byte physically written before the crash,
	// including the torn prefix of the in-flight write — the disk
	// absorbed appends in order, the cut lands mid-record.
	KeepTorn CrashMode = iota
	// SyncedOnly drops everything after the last successful Sync — the
	// adversarial page-cache model, which also catches code that
	// reports durability without having called Sync at all.
	SyncedOnly
)

func (m CrashMode) String() string {
	if m == SyncedOnly {
		return "synced-only"
	}
	return "keep-torn"
}

// inode is one file's content. The namespace maps (current vs durable)
// share inodes; data is what the application sees, syncedLen what Sync
// has pinned.
type inode struct {
	data      []byte
	syncedLen int
}

// MemFS is a crash-injecting in-memory store.FS.
//
// Durability model, matching the contract documented on store.FS:
// bytes survive a crash per the CrashMode; namespace operations
// (Create, Rename, Remove) apply to the current view immediately but
// reach the durable view only when SyncDir covers their directory.
//
// Crash injection: ByteBudget kills the writer after that many bytes
// across all Write calls (mid-call writes keep their torn prefix);
// OpBudget kills it before the Nth filesystem operation, covering the
// windows between the steps of the checkpoint protocol. Whichever
// fires first wins; zero budgets never fire.
type MemFS struct {
	mu      sync.Mutex
	mode    CrashMode
	crashed bool

	byteBudget int64 // remaining write bytes; <0 = unlimited
	opBudget   int64 // remaining ops; <0 = unlimited

	cur  map[string]*inode // application-visible namespace
	dur  map[string]*inode // namespace as of the covering SyncDir
	dirs map[string]bool

	bytesWritten int64
	ops          int64
}

// NewMemFS returns a MemFS with no crash armed.
func NewMemFS() *MemFS {
	return &MemFS{
		mode:       KeepTorn,
		byteBudget: -1, opBudget: -1,
		cur:  map[string]*inode{},
		dur:  map[string]*inode{},
		dirs: map[string]bool{},
	}
}

// Arm schedules the crash: after byteBudget written bytes or before
// the opBudget-th operation, whichever comes first (negative budgets
// never fire), with the given survival mode.
func (m *MemFS) Arm(byteBudget, opBudget int64, mode CrashMode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byteBudget, m.opBudget, m.mode = byteBudget, opBudget, mode
}

// BytesWritten returns the total bytes passed to Write so far; the
// harness reads it after a clean run to enumerate crash offsets.
func (m *MemFS) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesWritten
}

// Ops returns the total operation count, the op-crash analogue of
// BytesWritten.
func (m *MemFS) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the armed crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// DurableView returns a fresh, un-armed MemFS holding exactly what
// survived the crash: the durable namespace, and per CrashMode either
// all physically written bytes or only the synced prefix. Recovery
// runs against the view, never against the crashed instance.
func (m *MemFS) DurableView() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := NewMemFS()
	for d := range m.dirs {
		v.dirs[d] = true
	}
	for path, ino := range m.dur {
		data := ino.data
		if m.mode == SyncedOnly {
			data = data[:ino.syncedLen]
		}
		n := &inode{data: append([]byte(nil), data...)}
		n.syncedLen = len(n.data)
		v.cur[path] = n
		v.dur[path] = n
	}
	return v
}

// DurableLen returns the surviving byte length of path in the durable
// view (0 if absent) — the oracle uses it to count durable WAL records
// without re-running recovery.
func (m *MemFS) DurableLen(path string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.dur[path]
	if !ok {
		return 0
	}
	if m.mode == SyncedOnly {
		return int64(ino.syncedLen)
	}
	return int64(len(ino.data))
}

// DurableFiles lists the durable namespace, for debugging failed cases.
func (m *MemFS) DurableFiles() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path, ino := range m.dur {
		n := len(ino.data)
		if m.mode == SyncedOnly {
			n = ino.syncedLen
		}
		names = append(names, fmt.Sprintf("%s[%d]", path, n))
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// step charges one operation against the op budget. Callers hold mu.
func (m *MemFS) step() error {
	if m.crashed {
		return ErrCrashed
	}
	if m.opBudget == 0 {
		m.crashed = true
		return ErrCrashed
	}
	if m.opBudget > 0 {
		m.opBudget--
	}
	m.ops++
	return nil
}

// MkdirAll implements store.FS.
func (m *MemFS) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	m.dirs[path] = true
	return nil
}

// Create implements store.FS: a fresh inode in the current namespace
// (the durable view keeps the old one until SyncDir).
func (m *MemFS) Create(path string) (store.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	ino := &inode{}
	m.cur[path] = ino
	return &memFile{fs: m, ino: ino}, nil
}

// Append implements store.FS.
func (m *MemFS) Append(path string) (store.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	ino, ok := m.cur[path]
	if !ok {
		ino = &inode{}
		m.cur[path] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

// Open implements store.FS.
func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	data, err := m.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// ReadFile implements store.FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	ino, ok := m.cur[path]
	if !ok {
		return nil, fmt.Errorf("crashtest: %s: %w", path, errNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

var errNotExist = errors.New("file does not exist")

// Rename implements store.FS: atomic in the current namespace; durable
// only after SyncDir.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	ino, ok := m.cur[oldPath]
	if !ok {
		return fmt.Errorf("crashtest: rename %s: %w", oldPath, errNotExist)
	}
	delete(m.cur, oldPath)
	m.cur[newPath] = ino
	return nil
}

// Remove implements store.FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	if _, ok := m.cur[path]; !ok {
		return fmt.Errorf("crashtest: remove %s: %w", path, errNotExist)
	}
	delete(m.cur, path)
	return nil
}

// Truncate implements store.FS. Content changes act on the inode both
// views share — recovery's torn-tail truncation is idempotent, so
// modeling it as immediately durable loses no coverage.
func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	ino, ok := m.cur[path]
	if !ok {
		return fmt.Errorf("crashtest: truncate %s: %w", path, errNotExist)
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("crashtest: truncate %s to %d of %d", path, size, len(ino.data))
	}
	ino.data = ino.data[:size]
	if ino.syncedLen > int(size) {
		ino.syncedLen = int(size)
	}
	return nil
}

// Exists implements store.FS.
func (m *MemFS) Exists(path string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return false, err
	}
	_, ok := m.cur[path]
	return ok, nil
}

// SyncDir implements store.FS: the durable namespace under dir catches
// up with the current one.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	prefix := dir + "/"
	for path := range m.dur {
		if strings.HasPrefix(path, prefix) {
			if _, ok := m.cur[path]; !ok {
				delete(m.dur, path)
			}
		}
	}
	for path, ino := range m.cur {
		if strings.HasPrefix(path, prefix) {
			m.dur[path] = ino
		}
	}
	return nil
}

// memFile is a handle on an inode.
type memFile struct {
	fs     *MemFS
	ino    *inode
	closed bool
}

// Write appends, charging the byte budget; a mid-call exhaustion keeps
// the torn prefix and fires the crash.
func (f *memFile) Write(b []byte) (int, error) {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return 0, err
	}
	if f.closed {
		return 0, errors.New("crashtest: write to closed file")
	}
	n := len(b)
	if m.byteBudget >= 0 && int64(n) > m.byteBudget {
		n = int(m.byteBudget)
		f.ino.data = append(f.ino.data, b[:n]...)
		m.bytesWritten += int64(n)
		m.byteBudget = 0
		m.crashed = true
		return n, ErrCrashed
	}
	if m.byteBudget > 0 {
		m.byteBudget -= int64(n)
	}
	f.ino.data = append(f.ino.data, b...)
	m.bytesWritten += int64(n)
	return n, nil
}

// Sync pins the file's current length as surviving SyncedOnly crashes.
func (f *memFile) Sync() error {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	if f.closed {
		return errors.New("crashtest: sync of closed file")
	}
	f.ino.syncedLen = len(f.ino.data)
	return nil
}

// Close implements store.File. Closing after a crash is allowed (and
// a no-op): recovery paths close handles unconditionally.
func (f *memFile) Close() error {
	f.closed = true
	return nil
}
