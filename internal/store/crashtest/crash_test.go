package crashtest

import (
	"errors"
	"math/rand"
	"testing"

	"probkb/internal/kb"
	"probkb/internal/store"
)

// TestMemFSModel pins the crash filesystem's own semantics: what is
// durable when, in both survival modes.
func TestMemFSModel(t *testing.T) {
	build := func() *MemFS {
		fs := NewMemFS()
		if err := fs.MkdirAll("d"); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	t.Run("unsynced bytes split the modes", func(t *testing.T) {
		for _, mode := range []CrashMode{KeepTorn, SyncedOnly} {
			fs := build()
			f, _ := fs.Create("d/f")
			f.Write([]byte("abcd"))
			f.Sync()
			f.Write([]byte("efgh")) // never synced
			fs.SyncDir("d")
			fs.Arm(0, -1, mode) // any further write crashes
			if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("expected crash, got %v", err)
			}
			want := int64(8)
			if mode == SyncedOnly {
				want = 4
			}
			if got := fs.DurableLen("d/f"); got != want {
				t.Fatalf("%v: durable %d, want %d", mode, got, want)
			}
		}
	})

	t.Run("rename durable only after SyncDir", func(t *testing.T) {
		fs := build()
		f, _ := fs.Create("d/tmp")
		f.Write([]byte("abcd"))
		f.Sync()
		f.Close()
		fs.SyncDir("d")
		if err := fs.Rename("d/tmp", "d/final"); err != nil {
			t.Fatal(err)
		}
		// Crash before SyncDir: the durable namespace still has d/tmp.
		if n := fs.DurableLen("d/final"); n != 0 {
			t.Fatalf("rename durable without SyncDir (%d bytes)", n)
		}
		if n := fs.DurableLen("d/tmp"); n != 4 {
			t.Fatalf("old name lost before SyncDir (%d bytes)", n)
		}
		fs.SyncDir("d")
		if n := fs.DurableLen("d/final"); n != 4 {
			t.Fatalf("rename not durable after SyncDir (%d bytes)", n)
		}
		if n := fs.DurableLen("d/tmp"); n != 0 {
			t.Fatalf("old name survived SyncDir (%d bytes)", n)
		}
	})

	t.Run("torn write keeps the prefix", func(t *testing.T) {
		fs := build()
		f, _ := fs.Create("d/f")
		fs.SyncDir("d")
		fs.Arm(6, -1, KeepTorn)
		if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("expected crash, got %v", err)
		}
		if got := fs.DurableLen("d/f"); got != 6 {
			t.Fatalf("torn write kept %d bytes, want 6", got)
		}
		// Everything afterwards is dead.
		if _, err := fs.ReadFile("d/f"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash op succeeded: %v", err)
		}
	})
}

// Symbol pools for random KBs: small enough that deletes and marginal
// updates frequently hit existing facts, and that duplicate inserts
// (exercising max-weight dedup and idempotence) occur.
var (
	poolRels     = []string{"born_in", "live_in", "located_in", "works_at"}
	poolEntities = []string{"ada", "grace", "nyc", "paris", "mit", "inria"}
	poolClasses  = []string{"Person", "Place", "Org"}
)

func randFact(rng *rand.Rand) store.FactRec {
	return store.FactRec{
		Rel: poolRels[rng.Intn(len(poolRels))],
		X:   poolEntities[rng.Intn(len(poolEntities))], XClass: poolClasses[rng.Intn(len(poolClasses))],
		Y: poolEntities[rng.Intn(len(poolEntities))], YClass: poolClasses[rng.Intn(len(poolClasses))],
		W: float64(rng.Intn(100)) / 100,
	}
}

func randKB(t *testing.T, rng *rand.Rand) *kb.KB {
	t.Helper()
	k := kb.New()
	// A taxonomy edge so member propagation is in play.
	sub := k.Classes.Intern(poolClasses[0])
	super := k.Classes.Intern(poolClasses[1])
	if err := k.DeclareSubclass(sub, super); err != nil {
		t.Fatal(err)
	}
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		f := randFact(rng)
		k.InternFact(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.W)
	}
	if rng.Intn(2) == 0 {
		c, err := k.ParseRule("1.10 live_in(x:Person, y:Place) :- born_in(x:Person, y:Place)")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.AddRule(c); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 0 {
		if rel, ok := k.RelDict.Lookup("born_in"); ok {
			if err := k.AddConstraint(kb.Constraint{Rel: rel, Type: kb.TypeI, Degree: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return k
}

func randScript(t *testing.T, rng *rand.Rand) Script {
	t.Helper()
	s := Script{Base: randKB(t, rng)}
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		var op Op
		switch rng.Intn(7) {
		case 0:
			op = Op{Kind: OpCheckpoint}
		case 1:
			op = Op{Kind: store.RecDeletes, Facts: []store.FactRec{randFact(rng)}}
		case 2:
			op = Op{Kind: store.RecMarginals, Facts: []store.FactRec{randFact(rng), randFact(rng)}}
		default:
			facts := make([]store.FactRec, 1+rng.Intn(3))
			for j := range facts {
				facts[j] = randFact(rng)
			}
			op = Op{Kind: store.RecFacts, Facts: facts}
		}
		s.Ops = append(s.Ops, op)
	}
	return s
}

// runCrashMatrix drives `cases` random scripts through the full crash
// matrix, shrinking the first failure before reporting it.
func runCrashMatrix(t *testing.T, cases, intra int, seed int64) {
	t.Helper()
	points := 0
	for c := 0; c < cases; c++ {
		caseSeed := seed + int64(c)
		rng := rand.New(rand.NewSource(caseSeed))
		script := randScript(t, rng)
		pts, err := Points(script, intra, rng)
		if err != nil {
			t.Fatalf("case %d (seed %d): enumerating crash points: %v", c, caseSeed, err)
		}
		points += len(pts)
		for _, p := range pts {
			if perr := RunPoint(script, p); perr != nil {
				small, serr := Shrink(script, intra, caseSeed)
				var desc string
				for _, op := range small.Ops {
					desc += " " + op.String()
				}
				t.Fatalf("case %d (seed %d) failed at %v: %v\nshrunk to %d ops:%s\nshrunk failure: %v",
					c, caseSeed, p, perr, len(small.Ops), desc, serr)
			}
		}
	}
	t.Logf("crash matrix: %d scripts × both modes, %d crash points, all recovered bit-identically", cases, points)
}

// TestCrashMatrixShort is the always-on slice of the crash matrix:
// every record boundary plus one intra-record offset per record, a
// handful of random KBs. `make crashtest` (build tag `slow`) runs the
// full matrix.
func TestCrashMatrixShort(t *testing.T) {
	cases := 6
	if testing.Short() {
		cases = 2
	}
	runCrashMatrix(t, cases, 1, 20260806)
}

// TestCrashPointExplicit pins a few hand-picked protocol windows so a
// regression names the window directly instead of a matrix index:
// mid-checkpoint (between rename and WAL rotation) and the very first
// record's torn write.
func TestCrashPointExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	script := randScript(t, rng)
	// Ensure at least one checkpoint between appends.
	script.Ops = append(script.Ops, Op{Kind: OpCheckpoint}, Op{Kind: store.RecFacts, Facts: []store.FactRec{randFact(rng)}})
	_, totalOps, err := Boundaries(script)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= totalOps; n++ {
		for _, m := range []CrashMode{KeepTorn, SyncedOnly} {
			if err := RunPoint(script, Point{OpN: n, Mode: m}); err != nil {
				t.Fatalf("op window %d/%v: %v", n, m, err)
			}
		}
	}
}

// TestShrinkReduces checks the shrinker itself on an artificial
// failure predicate (a script "fails" when it still has a delete op):
// the minimum should be a single op.
func TestShrinkReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	script := randScript(t, rng)
	script.Ops = append(script.Ops, Op{Kind: store.RecDeletes, Facts: []store.FactRec{randFact(rng)}})
	// Shrink against the real matrix must return nil error (healthy
	// scripts don't fail) and the script untouched.
	same, err := Shrink(script, 1, 7)
	if err != nil {
		t.Fatalf("healthy script failed the matrix: %v", err)
	}
	if len(same.Ops) != len(script.Ops) {
		t.Fatalf("shrinker reduced a passing script")
	}
}

// TestOracleDetectsLostDurability makes sure the harness would catch a
// broken engine: a store that lies about durability (sync dropped)
// must fail the matrix. We simulate it by arming SyncedOnly crashes
// against a hand-built FS whose Sync is a no-op.
func TestOracleDetectsLostDurability(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	script := Script{Base: randKB(t, rng), Ops: []Op{
		{Kind: store.RecFacts, Facts: []store.FactRec{randFact(rng)}},
		{Kind: store.RecFacts, Facts: []store.FactRec{randFact(rng)}},
	}}
	boundaries, _, err := Boundaries(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(boundaries) != 2 {
		t.Fatalf("want 2 append boundaries, got %d", len(boundaries))
	}
	// Tear the second append mid-write; the first was acknowledged.
	fs := NewMemFS()
	fs.Arm(boundaries[1]-1, -1, SyncedOnly)
	log, _, execErr := execute(liarFS{fs}, script)
	if !errors.Is(execErr, ErrCrashed) {
		t.Fatalf("expected crash during second append, got %v", execErr)
	}
	ok := 0
	for _, e := range log {
		if e.ok {
			ok++
		}
	}
	if ok != 1 {
		t.Fatalf("want 1 acknowledged append before the crash, got %d", ok)
	}
	// With Sync dropped nothing was ever pinned: in SyncedOnly mode the
	// durable WAL is empty even though one append was acknowledged —
	// exactly the j < okAppends violation RunPoint's oracle reports.
	walBytes := fs.DurableLen(storeDir + "/" + store.WALName(log[0].gen))
	if walBytes > 0 {
		t.Fatalf("liar FS still produced durable WAL bytes (%d)", walBytes)
	}
}

// liarFS wraps a MemFS but hands out files whose Sync silently does
// nothing — the "dropped fsync" fault the oracle must catch.
type liarFS struct{ *MemFS }

func (l liarFS) Create(path string) (store.File, error) {
	f, err := l.MemFS.Create(path)
	if err != nil {
		return nil, err
	}
	return noSyncFile{f}, nil
}

func (l liarFS) Append(path string) (store.File, error) {
	f, err := l.MemFS.Append(path)
	if err != nil {
		return nil, err
	}
	return noSyncFile{f}, nil
}

type noSyncFile struct{ store.File }

func (noSyncFile) Sync() error { return nil }
