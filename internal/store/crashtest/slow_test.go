//go:build slow

package crashtest

import "testing"

// TestCrashMatrixLong is the full crash matrix behind the slow tag
// (`make crashtest`): many random KBs, every record boundary, three
// intra-record offsets per record, every filesystem-operation window,
// in both survival modes.
func TestCrashMatrixLong(t *testing.T) {
	runCrashMatrix(t, 40, 3, 424242)
}
