package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"probkb/internal/kb"
	"probkb/internal/store"
)

// An Op is one storage-engine operation of a crash script.
type Op struct {
	// Kind is store.RecFacts/RecDeletes/RecMarginals for appends, or
	// OpCheckpoint.
	Kind  byte
	Facts []store.FactRec
}

// OpCheckpoint rewrites the snapshot and rotates the WAL.
const OpCheckpoint = 0

func (o Op) String() string {
	switch o.Kind {
	case OpCheckpoint:
		return "checkpoint"
	case store.RecFacts:
		return fmt.Sprintf("facts×%d", len(o.Facts))
	case store.RecDeletes:
		return fmt.Sprintf("deletes×%d", len(o.Facts))
	case store.RecMarginals:
		return fmt.Sprintf("marginals×%d", len(o.Facts))
	}
	return fmt.Sprintf("op(%d)", o.Kind)
}

// Script is one crash-test case: a base KB and a sequence of durable
// operations against its store.
type Script struct {
	Base *kb.KB
	Ops  []Op
}

// storeDir is the directory every harness run uses inside its MemFS.
const storeDir = "kb"

// Point is one armed crash: byte-budget, op-budget (≤0 disables each),
// and the survival mode.
type Point struct {
	Bytes int64
	OpN   int64
	Mode  CrashMode
}

func (p Point) String() string {
	if p.OpN > 0 {
		return fmt.Sprintf("crash[op=%d,%s]", p.OpN, p.Mode)
	}
	return fmt.Sprintf("crash[byte=%d,%s]", p.Bytes, p.Mode)
}

// disabled encodes "no budget" for Arm.
func (p Point) arm(fs *MemFS) {
	b, o := p.Bytes, p.OpN
	if b <= 0 {
		b = -1
	}
	if o <= 0 {
		o = -1
	}
	fs.Arm(b, o, p.Mode)
}

// execute runs the script against fs, stopping at the first crashed
// operation. It returns the per-append log (the op's WAL generation at
// append time, its encoded length, and whether it succeeded) and the
// number of ops that completed.
type appendLog struct {
	gen    uint32
	length int64
	ok     bool
}

func execute(fs store.FS, script Script) (log []appendLog, completed int, err error) {
	st, err := store.Create(fs, storeDir, script.Base)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	for _, op := range script.Ops {
		if op.Kind == OpCheckpoint {
			if err := st.Checkpoint(); err != nil {
				return log, completed, err
			}
			completed++
			continue
		}
		entry := appendLog{
			gen:    st.Gen(),
			length: int64(len(store.EncodeRecord(store.Record{Type: op.Kind, Facts: op.Facts}))),
		}
		var aerr error
		switch op.Kind {
		case store.RecFacts:
			aerr = st.AppendFacts(op.Facts)
		case store.RecDeletes:
			aerr = st.AppendDeletes(op.Facts)
		case store.RecMarginals:
			aerr = st.AppendMarginals(op.Facts)
		default:
			return log, completed, fmt.Errorf("crashtest: bad op kind %d", op.Kind)
		}
		entry.ok = aerr == nil
		log = append(log, entry)
		if aerr != nil {
			return log, completed, aerr
		}
		completed++
	}
	return log, completed, nil
}

// Boundaries runs the script crash-free and returns the cumulative
// write-byte offset right after each append op's record write — the
// record boundaries the crash matrix targets — plus the total ops.
func Boundaries(script Script) (boundaries []int64, totalOps int64, err error) {
	fs := NewMemFS()
	st, err := store.Create(fs, storeDir, script.Base)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	for _, op := range script.Ops {
		var oerr error
		switch op.Kind {
		case OpCheckpoint:
			oerr = st.Checkpoint()
		case store.RecFacts:
			oerr = st.AppendFacts(op.Facts)
		case store.RecDeletes:
			oerr = st.AppendDeletes(op.Facts)
		case store.RecMarginals:
			oerr = st.AppendMarginals(op.Facts)
		default:
			oerr = fmt.Errorf("crashtest: bad op kind %d", op.Kind)
		}
		if oerr != nil {
			return nil, 0, oerr
		}
		if op.Kind != OpCheckpoint {
			boundaries = append(boundaries, fs.BytesWritten())
		}
	}
	return boundaries, fs.Ops(), nil
}

// dumpKB is the canonical byte dump recovered-vs-oracle equality is
// judged by.
func dumpKB(k *kb.KB) ([]byte, error) {
	var buf bytes.Buffer
	if err := k.WriteBinary(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RunPoint executes the script with the crash point armed, recovers
// from the durable view, and differentially checks the result against
// the oracle. A nil return means the invariants held at this point.
//
// The oracle never consults the recovery code path: the expected state
// is the durable snapshot plus the first j in-memory records of its
// generation, where j is computed from the harness's own record-length
// log and the durable byte length of the WAL file.
func RunPoint(script Script, p Point) error {
	fs := NewMemFS()
	p.arm(fs)
	log, _, execErr := execute(fs, script)
	if execErr != nil && !errors.Is(execErr, ErrCrashed) {
		return fmt.Errorf("%s: unexpected execution error: %w", p, execErr)
	}

	view := fs.DurableView()

	// Oracle part 1: the durable snapshot must always be complete —
	// that is the atomic-replace guarantee. Before the very first
	// snapshot lands there is nothing to recover, and Open must say so
	// cleanly.
	base, gen, snapErr := store.ReadSnapshot(view, storeDir)
	if snapErr != nil {
		if fs.DurableLen(storeDir+"/snapshot.pks") > 0 {
			return fmt.Errorf("%s: durable snapshot unreadable: %v (files: %s)", p, snapErr, fs.DurableFiles())
		}
		if _, openErr := store.Open(view, storeDir); openErr == nil {
			return fmt.Errorf("%s: Open succeeded with no durable snapshot", p)
		}
		return nil
	}

	// Oracle part 2: expected = snapshot + the first j records of its
	// generation, j = complete records within the durable WAL bytes.
	walBytes := fs.DurableLen(storeDir + "/" + store.WALName(gen))
	var cum int64
	j := 0
	okAppends := 0
	for _, e := range log {
		if e.gen != gen {
			continue
		}
		if cum+e.length <= walBytes {
			cum += e.length
			j++
		} else {
			break
		}
	}
	for _, e := range log {
		if e.gen == gen && e.ok {
			okAppends++
		}
	}
	// Durability guarantee: every append that reported success before
	// the crash must be among the recovered records.
	if j < okAppends {
		return fmt.Errorf("%s: %d appends acknowledged but only %d durable (wal=%dB)", p, okAppends, j, walBytes)
	}
	expected := base
	n := 0
	for _, op := range script.Ops {
		if op.Kind == OpCheckpoint {
			continue
		}
		// The k-th append of generation `gen` is the k-th log entry
		// with that gen, in order; apply the first j of them.
		if logGenOf(log, n) == gen {
			if n2 := genIndexOf(log, n); n2 < j {
				if err := store.ApplyRecord(expected, store.Record{Type: op.Kind, Facts: op.Facts}); err != nil {
					return fmt.Errorf("%s: oracle apply: %v", p, err)
				}
			}
		}
		n++
	}
	wantDump, err := dumpKB(expected)
	if err != nil {
		return fmt.Errorf("%s: oracle dump: %v", p, err)
	}

	// Recover and compare bit-wise.
	rec, err := store.Open(view, storeDir)
	if err != nil {
		return fmt.Errorf("%s: recovery failed: %v (files: %s)", p, err, fs.DurableFiles())
	}
	defer rec.Close()
	gotDump, err := dumpKB(rec.KB())
	if err != nil {
		return fmt.Errorf("%s: recovered dump: %v", p, err)
	}
	if !bytes.Equal(wantDump, gotDump) {
		return fmt.Errorf("%s: recovered KB differs from oracle (gen=%d j=%d wal=%dB, files: %s)",
			p, gen, j, walBytes, fs.DurableFiles())
	}
	if rec.Gen() != gen || rec.WALRecords() != int64(j) {
		return fmt.Errorf("%s: recovered gen=%d records=%d, oracle says gen=%d records=%d",
			p, rec.Gen(), rec.WALRecords(), gen, j)
	}

	// Resume check: the recovered store must accept appends and survive
	// a second (clean) recovery — i.e. torn tails really were cut.
	if err := rec.AppendFacts([]store.FactRec{{Rel: "resumed", X: "after", XClass: "Crash", Y: "point", YClass: "Crash", W: 0.5}}); err != nil {
		return fmt.Errorf("%s: resume append: %v", p, err)
	}
	resumedDump, err := dumpKB(rec.KB())
	if err != nil {
		return err
	}
	rec.Close()
	again, err := store.Open(view, storeDir)
	if err != nil {
		return fmt.Errorf("%s: second recovery: %v", p, err)
	}
	defer again.Close()
	againDump, err := dumpKB(again.KB())
	if err != nil {
		return err
	}
	if !bytes.Equal(resumedDump, againDump) {
		return fmt.Errorf("%s: resumed state lost on second recovery", p)
	}
	return nil
}

// logGenOf returns the generation of append-log entry n (entries past
// the crash never made it into the log; treat them as a generation
// that never recovers so the oracle skips them).
func logGenOf(log []appendLog, n int) uint32 {
	if n >= len(log) {
		return ^uint32(0)
	}
	return log[n].gen
}

// genIndexOf returns entry n's ordinal among entries sharing its gen.
func genIndexOf(log []appendLog, n int) int {
	idx := 0
	for i := 0; i < n; i++ {
		if log[i].gen == log[n].gen {
			idx++
		}
	}
	return idx
}

// Points enumerates the crash matrix for a script: a crash exactly at
// every record boundary, `intra` deterministic pseudo-random offsets
// inside every record, and a crash before every filesystem operation
// (covering the checkpoint protocol's windows) — each in both survival
// modes.
func Points(script Script, intra int, rng *rand.Rand) ([]Point, error) {
	boundaries, totalOps, err := Boundaries(script)
	if err != nil {
		return nil, err
	}
	var pts []Point
	modes := []CrashMode{KeepTorn, SyncedOnly}
	prev := int64(0)
	for _, b := range boundaries {
		for _, m := range modes {
			pts = append(pts, Point{Bytes: b, Mode: m})
			width := b - prev
			for t := 0; t < intra && width > 1; t++ {
				off := prev + 1 + rng.Int63n(width-1)
				pts = append(pts, Point{Bytes: off, Mode: m})
			}
		}
		prev = b
	}
	for n := int64(1); n <= totalOps; n++ {
		for _, m := range modes {
			pts = append(pts, Point{OpN: n, Mode: m})
		}
	}
	return pts, nil
}

// RunMatrix runs the whole crash matrix and returns the first failing
// point's error (nil if the script survives everything).
func RunMatrix(script Script, intra int, rng *rand.Rand) error {
	pts, err := Points(script, intra, rng)
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := RunPoint(script, p); err != nil {
			return err
		}
	}
	return nil
}

// Shrink greedily reduces a failing script — dropping ops, then
// halving fact batches — while the full matrix still fails, in the
// spirit of internal/proptest's shrinker. It returns the smallest
// still-failing script and its failure.
func Shrink(script Script, intra int, seed int64) (Script, error) {
	fails := func(s Script) error {
		return RunMatrix(s, intra, rand.New(rand.NewSource(seed)))
	}
	err := fails(script)
	if err == nil {
		return script, nil
	}
	for reduced := true; reduced; {
		reduced = false
		for i := 0; i < len(script.Ops); i++ {
			cand := Script{Base: script.Base, Ops: append(append([]Op(nil), script.Ops[:i]...), script.Ops[i+1:]...)}
			if cerr := fails(cand); cerr != nil {
				script, err, reduced = cand, cerr, true
				break
			}
		}
		if reduced {
			continue
		}
		for i, op := range script.Ops {
			if len(op.Facts) < 2 {
				continue
			}
			half := append([]store.FactRec(nil), op.Facts[:len(op.Facts)/2]...)
			ops := append([]Op(nil), script.Ops...)
			ops[i] = Op{Kind: op.Kind, Facts: half}
			cand := Script{Base: script.Base, Ops: ops}
			if cerr := fails(cand); cerr != nil {
				script, err, reduced = cand, cerr, true
				break
			}
		}
	}
	return script, err
}
