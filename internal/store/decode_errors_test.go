package store

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probkb/internal/engine"
)

// frameWith builds one CRC-valid frame around an arbitrary payload —
// the corruption the WAL decoder must treat as a hard error, since no
// crash can produce a checksummed frame with a malformed payload.
func frameWith(payload []byte) []byte {
	var buf bytes.Buffer
	appendFrame(&buf, payload)
	return buf.Bytes()
}

// TestDecodeWALRejectsValidFrameBadPayload pins the torn-tail/corruption
// distinction: framing damage is a clean stop, but a CRC-valid frame
// whose payload does not decode is an error.
func TestDecodeWALRejectsValidFrameBadPayload(t *testing.T) {
	cases := map[string][]byte{
		"unknown record type": {99, 0, 0, 0, 0},
		"implausible count": func() []byte {
			var p bytes.Buffer
			p.WriteByte(RecFacts)
			putU32(&p, maxRows+1)
			return p.Bytes()
		}(),
		"count without facts": func() []byte {
			var p bytes.Buffer
			p.WriteByte(RecFacts)
			putU32(&p, 3)
			return p.Bytes()
		}(),
		"trailing bytes": func() []byte {
			rec := EncodeRecord(Record{Type: RecFacts, Facts: []FactRec{{Rel: "r"}}})
			payload := rec[8:]
			return append(append([]byte{}, payload...), 0xAA)
		}(),
		"oversized symbol": func() []byte {
			var p bytes.Buffer
			p.WriteByte(RecFacts)
			putU32(&p, 1)
			putU32(&p, maxSymbolLen+1)
			p.Write(make([]byte, 40))
			return p.Bytes()
		}(),
	}
	for name, payload := range cases {
		good := EncodeRecord(Record{Type: RecDeletes, Facts: []FactRec{{Rel: "r"}}})
		data := append(append([]byte{}, good...), frameWith(payload)...)
		recs, validLen, err := DecodeWAL(data)
		if err == nil {
			t.Errorf("%s: no error (got %d records)", name, len(recs))
			continue
		}
		if len(recs) != 1 || validLen != len(good) {
			t.Errorf("%s: prefix %d records / %d bytes, want 1 / %d", name, len(recs), validLen, len(good))
		}
	}
}

// TestDecodeTablesRejectsCorruptFrames drives the snapshot decoder's
// strict error paths with CRC-valid but semantically broken frames.
func TestDecodeTablesRejectsCorruptFrames(t *testing.T) {
	header := func(name string, nrows uint32, cols ...engine.ColDef) []byte {
		var p bytes.Buffer
		p.WriteByte(frameTableHeader)
		putName(&p, name)
		putU32(&p, nrows)
		var nc [2]byte
		binary.LittleEndian.PutUint16(nc[:], uint16(len(cols)))
		p.Write(nc[:])
		for _, c := range cols {
			putName(&p, c.Name)
			p.WriteByte(byte(c.Type))
		}
		return p.Bytes()
	}
	column := func(idx uint16, ct engine.ColType, count uint32, body []byte) []byte {
		var p bytes.Buffer
		p.WriteByte(frameColumn)
		var ci [2]byte
		binary.LittleEndian.PutUint16(ci[:], idx)
		p.Write(ci[:])
		p.WriteByte(byte(ct))
		putU32(&p, count)
		p.Write(body)
		return p.Bytes()
	}
	snap := func(payloads ...[]byte) []byte {
		out := append([]byte{}, snapshotMagic[:]...)
		for _, p := range payloads {
			out = append(out, frameWith(p)...)
		}
		return out
	}
	intCol := engine.C("v", engine.Int32)

	cases := map[string][]byte{
		"bad magic":               []byte("NOTASNAP"),
		"unknown frame kind":      snap([]byte{7}),
		"column before header":    snap(column(0, engine.Int32, 0, nil)),
		"implausible rows":        snap(header("t", maxRows+1, intCol)),
		"unknown column type":     snap(header("t", 0, engine.C("v", engine.ColType(9)))),
		"missing columns at next": snap(header("t", 0, intCol), header("u", 0, intCol)),
		"missing columns at EOF":  snap(header("t", 0, intCol)),
		"extra column frame":      snap(header("t", 0), column(0, engine.Int32, 0, nil)),
		"column out of order":     snap(header("t", 0, intCol, engine.C("w", engine.Int32)), column(1, engine.Int32, 0, nil)),
		"column type mismatch":    snap(header("t", 0, intCol), column(0, engine.Float64, 0, nil)),
		"column count mismatch":   snap(header("t", 2, intCol), column(0, engine.Int32, 1, []byte{1, 0, 0, 0})),
		"column body too short":   snap(header("t", 2, intCol), column(0, engine.Int32, 2, []byte{1, 0, 0, 0})),
		"truncated header":        snap([]byte{frameTableHeader, 5, 0}),
	}
	for name, data := range cases {
		if _, err := DecodeTables(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestKBFromTablesRejectsWrongShape covers the reconstruction guards:
// table count, table names, schemas, and out-of-range IDs must all fail
// cleanly instead of panicking later.
func TestKBFromTablesRejectsWrongShape(t *testing.T) {
	tables, err := KBTables(fuzzSeedKB(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := KBFromTables(tables[:3]); err == nil || !strings.Contains(err.Error(), "tables") {
		t.Fatalf("short table set: %v", err)
	}

	renamed := append([]*engine.Table{}, tables...)
	renamed[2] = engine.NewTable("wrong", renamed[2].Schema())
	if _, _, err := KBFromTables(renamed); err == nil {
		t.Fatal("renamed table accepted")
	}

	reschemad := append([]*engine.Table{}, tables...)
	reschemad[1] = engine.NewTable(tables[1].Name(), engine.NewSchema(engine.C("name", engine.Int32)))
	if _, _, err := KBFromTables(reschemad); err == nil {
		t.Fatal("wrong schema accepted")
	}

	// An out-of-range dictionary ID in the facts table must be caught by
	// the range checks, not crash Dict.Name downstream.
	badFacts := append([]*engine.Table{}, tables...)
	factsIdx := -1
	for i, tb := range tables {
		if tb.Name() == "facts" {
			factsIdx = i
		}
	}
	if factsIdx < 0 {
		t.Fatal("no facts table in snapshot layout")
	}
	ft := tables[factsIdx].Clone()
	ft.Int32Col(0)[0] = 9999
	badFacts[factsIdx] = ft
	if _, _, err := KBFromTables(badFacts); err == nil {
		t.Fatal("out-of-range relation ID accepted")
	}
}

// TestOSFSOpen covers the streaming read handle the FS interface
// exposes.
func TestOSFSOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OSFS{}.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Fatalf("read %q, %v", got, err)
	}
}
