package mln

import (
	"testing"
)

func sampleClauses() []Clause {
	return []Clause{
		mk(Atom{1, X, Y}, []Atom{{2, X, Y}}, 1.40),
		mk(Atom{1, X, Y}, []Atom{{2, X, Y}}, 1.53),
		mk(Atom{3, X, Y}, []Atom{{2, Y, X}}, 0.5),
		mk(Atom{4, X, Y}, []Atom{{5, Z, X}, {5, Z, Y}}, 0.32),
		mk(Atom{4, X, Y}, []Atom{{2, Z, X}, {2, Z, Y}}, 0.52),
		mk(Atom{4, X, Y}, []Atom{{5, X, Z}, {5, Y, Z}}, 0.7),
	}
}

func TestBuildPartitions(t *testing.T) {
	p, err := Build(sampleClauses())
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 6 {
		t.Fatalf("Total = %d, want 6", p.Total())
	}
	stats := p.Stats()
	want := [NumPartitions + 1]int{0, 2, 1, 2, 0, 0, 1}
	if stats != want {
		t.Fatalf("Stats = %v, want %v", stats, want)
	}
	ne := p.NonEmpty()
	wantNE := []int{P1, P2, P3, P6}
	if len(ne) != len(wantNE) {
		t.Fatalf("NonEmpty = %v, want %v", ne, wantNE)
	}
	for i := range ne {
		if ne[i] != wantNE[i] {
			t.Fatalf("NonEmpty = %v, want %v", ne, wantNE)
		}
	}
}

func TestPartitionTableContents(t *testing.T) {
	p, err := Build(sampleClauses())
	if err != nil {
		t.Fatal(err)
	}
	m1 := p.Table(P1)
	if m1.NumRows() != 2 {
		t.Fatalf("M1 rows = %d, want 2", m1.NumRows())
	}
	// First M1 row: (R1=1, R2=2, C1, C2, w=1.40).
	if m1.Int32Col(0)[0] != 1 || m1.Int32Col(1)[0] != 2 || m1.Float64Col(4)[0] != 1.40 {
		t.Fatalf("M1 row 0 = %s", m1.String())
	}
	m3 := p.Table(P3)
	if m3.NumRows() != 2 {
		t.Fatalf("M3 rows = %d, want 2", m3.NumRows())
	}
	if m3.Int32Col(0)[0] != 4 || m3.Int32Col(1)[0] != 5 || m3.Int32Col(2)[0] != 5 {
		t.Fatalf("M3 row 0 = %s", m3.String())
	}
	if len(p.Clauses(P3)) != 2 {
		t.Fatalf("Clauses(P3) = %d, want 2", len(p.Clauses(P3)))
	}
	if p.Table(P4).NumRows() != 0 {
		t.Fatal("M4 should be empty")
	}
}

func TestBuildRejectsBadClause(t *testing.T) {
	bad := []Clause{mk(Atom{1, Y, X}, []Atom{{2, X, Y}}, 1)}
	if _, err := Build(bad); err == nil {
		t.Fatal("Build accepted a malformed clause")
	}
}

func TestPartitionIndexPanics(t *testing.T) {
	p := NewPartitions()
	defer func() {
		if recover() == nil {
			t.Fatal("Table(0) did not panic")
		}
	}()
	p.Table(0)
}

func TestSchemas(t *testing.T) {
	if Len2Schema().String() != "(R1 int, R2 int, C1 int, C2 int, w float)" {
		t.Fatalf("Len2Schema = %s", Len2Schema())
	}
	if Len3Schema().NumCols() != 7 {
		t.Fatalf("Len3Schema cols = %d", Len3Schema().NumCols())
	}
}
