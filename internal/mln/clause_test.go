package mln

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mk builds a canonical clause directly.
func mk(head Atom, body []Atom, w float64) Clause {
	return Clause{Head: head, Body: body, Weight: w}
}

func TestPartitionShapes(t *testing.T) {
	cases := []struct {
		name string
		c    Clause
		want int
	}{
		{"P1", mk(Atom{1, X, Y}, []Atom{{2, X, Y}}, 1), P1},
		{"P2", mk(Atom{1, X, Y}, []Atom{{2, Y, X}}, 1), P2},
		{"P3", mk(Atom{1, X, Y}, []Atom{{2, Z, X}, {3, Z, Y}}, 1), P3},
		{"P4", mk(Atom{1, X, Y}, []Atom{{2, X, Z}, {3, Z, Y}}, 1), P4},
		{"P5", mk(Atom{1, X, Y}, []Atom{{2, Z, X}, {3, Y, Z}}, 1), P5},
		{"P6", mk(Atom{1, X, Y}, []Atom{{2, X, Z}, {3, Y, Z}}, 1), P6},
	}
	for _, tc := range cases {
		got, err := tc.c.Partition()
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: partition = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestPartitionRejects(t *testing.T) {
	cases := []struct {
		name string
		c    Clause
	}{
		{"bad head vars", mk(Atom{1, Y, X}, []Atom{{2, X, Y}}, 1)},
		{"empty body", mk(Atom{1, X, Y}, nil, 1)},
		{"three body atoms", mk(Atom{1, X, Y}, []Atom{{2, X, Y}, {3, X, Y}, {4, X, Y}}, 1)},
		{"single body with z", mk(Atom{1, X, Y}, []Atom{{2, X, Z}}, 1)},
		{"body atom order swapped", mk(Atom{1, X, Y}, []Atom{{2, Z, Y}, {3, Z, X}}, 1)},
	}
	for _, tc := range cases {
		if _, err := tc.c.Partition(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCanonicalizeLength1(t *testing.T) {
	// head p(v7, v3), body q(v3, v7) — variable numbers arbitrary.
	c, err := Canonicalize(RawAtom{Rel: 1, Arg1: 7, Arg2: 3},
		[]RawAtom{{Rel: 2, Arg1: 3, Arg2: 7}},
		map[int]int32{7: 100, 3: 200}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Partition()
	if err != nil || p != P2 {
		t.Fatalf("partition = %d, %v; want P2", p, err)
	}
	if c.Class[X] != 100 || c.Class[Y] != 200 {
		t.Fatalf("classes = %v", c.Class)
	}
	if c.Weight != 1.5 {
		t.Fatalf("weight = %v", c.Weight)
	}
}

func TestCanonicalizeLength2AllShapes(t *testing.T) {
	// Build each shape with scrambled variable numbers (x=5, y=9, z=2)
	// and scrambled body atom order, and check classification.
	x, y, z := 5, 9, 2
	classes := map[int]int32{x: 10, y: 20, z: 30}
	cases := []struct {
		name string
		b1   RawAtom
		b2   RawAtom
		want int
	}{
		{"P3", RawAtom{2, z, x}, RawAtom{3, z, y}, P3},
		{"P4", RawAtom{2, x, z}, RawAtom{3, z, y}, P4},
		{"P5", RawAtom{2, z, x}, RawAtom{3, y, z}, P5},
		{"P6", RawAtom{2, x, z}, RawAtom{3, y, z}, P6},
		// Swapped body order must canonicalize to the same shapes.
		{"P3 swapped", RawAtom{3, z, y}, RawAtom{2, z, x}, P3},
		{"P6 swapped", RawAtom{3, y, z}, RawAtom{2, x, z}, P6},
	}
	for _, tc := range cases {
		c, err := Canonicalize(RawAtom{1, x, y}, []RawAtom{tc.b1, tc.b2}, classes, 1)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		got, err := c.Partition()
		if err != nil || got != tc.want {
			t.Errorf("%s: partition = %d, %v; want %d", tc.name, got, err, tc.want)
		}
		if c.Class[X] != 10 || c.Class[Y] != 20 || c.Class[Z] != 30 {
			t.Errorf("%s: classes = %v", tc.name, c.Class)
		}
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	x, y, z := 0, 1, 2
	cls := map[int]int32{x: 1, y: 2, z: 3}
	cases := []struct {
		name string
		head RawAtom
		body []RawAtom
	}{
		{"head same var twice", RawAtom{1, x, x}, []RawAtom{{2, x, y}}},
		{"no body", RawAtom{1, x, y}, nil},
		{"three atoms", RawAtom{1, x, y}, []RawAtom{{2, x, y}, {3, x, y}, {4, x, y}}},
		{"four variables", RawAtom{1, x, y}, []RawAtom{{2, x, z}, {3, 7, y}}},
		{"body atom with both head vars", RawAtom{1, x, y}, []RawAtom{{2, x, y}, {3, z, y}}},
		{"body atom var repeated", RawAtom{1, x, y}, []RawAtom{{2, z, z}, {3, z, y}}},
		{"both body atoms on x", RawAtom{1, x, y}, []RawAtom{{2, z, x}, {3, x, z}}},
	}
	for _, tc := range cases {
		if _, err := Canonicalize(tc.head, tc.body, cls, 1); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestHard(t *testing.T) {
	if !mk(Atom{1, X, Y}, []Atom{{2, X, Y}}, math.Inf(1)).Hard() {
		t.Fatal("infinite weight not detected as hard")
	}
	if mk(Atom{1, X, Y}, []Atom{{2, X, Y}}, 3).Hard() {
		t.Fatal("finite weight detected as hard")
	}
}

func TestVarString(t *testing.T) {
	if X.String() != "x" || Y.String() != "y" || Z.String() != "z" {
		t.Fatal("variable names wrong")
	}
	if Var(9).String() != "Var(9)" {
		t.Fatal("unknown var formatting wrong")
	}
}

func TestRelationsUsed(t *testing.T) {
	c := mk(Atom{1, X, Y}, []Atom{{2, Z, X}, {2, Z, Y}}, 1)
	got := c.RelationsUsed()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("RelationsUsed = %v", got)
	}
}

// TestCanonicalizeRoundTrip: every canonical clause of every shape, when
// expressed with scrambled variable numbers, canonicalizes back to a
// clause with the same partition, relations, and classes.
func TestCanonicalizeRoundTrip(t *testing.T) {
	prop := func(seed int64, shape uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random distinct variable numbers.
		perm := rng.Perm(10)
		x, y, z := perm[0], perm[1], perm[2]
		classes := map[int]int32{x: rng.Int31n(50), y: rng.Int31n(50), z: rng.Int31n(50)}
		r1, r2, r3 := rng.Int31n(100), rng.Int31n(100), rng.Int31n(100)
		var body []RawAtom
		var want int
		switch shape % 6 {
		case 0:
			body, want = []RawAtom{{r2, x, y}}, P1
		case 1:
			body, want = []RawAtom{{r2, y, x}}, P2
		case 2:
			body, want = []RawAtom{{r2, z, x}, {r3, z, y}}, P3
		case 3:
			body, want = []RawAtom{{r2, x, z}, {r3, z, y}}, P4
		case 4:
			body, want = []RawAtom{{r2, z, x}, {r3, y, z}}, P5
		case 5:
			body, want = []RawAtom{{r2, x, z}, {r3, y, z}}, P6
		}
		// Shuffle body order for the two-atom shapes.
		if len(body) == 2 && rng.Intn(2) == 0 {
			body[0], body[1] = body[1], body[0]
		}
		c, err := Canonicalize(RawAtom{r1, x, y}, body, classes, 1)
		if err != nil {
			return false
		}
		got, err := c.Partition()
		if err != nil || got != want {
			return false
		}
		if c.Head.Rel != r1 {
			return false
		}
		return c.Class[X] == classes[x] && c.Class[Y] == classes[y] &&
			(len(body) == 1 || c.Class[Z] == classes[z])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
