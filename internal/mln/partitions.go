package mln

import (
	"fmt"

	"probkb/internal/engine"
)

// Schema column orders of the MLN partition tables (Definition 6 and
// Figure 3(b)(c) of the paper):
//
//	M1, M2:      (R1, R2, C1, C2, w)
//	M3 .. M6:    (R1, R2, R3, C1, C2, C3, w)
//
// A row of Mi is the identifier tuple that, combined with the partition's
// shape, uniquely reconstructs one rule.

// Len2Schema is the schema of partitions M1 and M2.
func Len2Schema() engine.Schema {
	return engine.NewSchema(
		engine.C("R1", engine.Int32),
		engine.C("R2", engine.Int32),
		engine.C("C1", engine.Int32),
		engine.C("C2", engine.Int32),
		engine.C("w", engine.Float64),
	)
}

// Len3Schema is the schema of partitions M3 through M6.
func Len3Schema() engine.Schema {
	return engine.NewSchema(
		engine.C("R1", engine.Int32),
		engine.C("R2", engine.Int32),
		engine.C("R3", engine.Int32),
		engine.C("C1", engine.Int32),
		engine.C("C2", engine.Int32),
		engine.C("C3", engine.Int32),
		engine.C("w", engine.Float64),
	)
}

// Partitions holds the six MLN tables plus the clause each row came from,
// so grounding results can point back at their rules.
type Partitions struct {
	m       [NumPartitions + 1]*engine.Table // 1-indexed; m[0] unused
	clauses [NumPartitions + 1][]Clause
	total   int
}

// NewPartitions returns six empty MLN tables.
func NewPartitions() *Partitions {
	p := &Partitions{}
	for i := P1; i <= P2; i++ {
		p.m[i] = engine.NewTable(fmt.Sprintf("M%d", i), Len2Schema())
	}
	for i := P3; i <= P6; i++ {
		p.m[i] = engine.NewTable(fmt.Sprintf("M%d", i), Len3Schema())
	}
	return p
}

// Add classifies a canonical clause and appends its identifier tuple to
// the matching partition table.
func (p *Partitions) Add(c Clause) error {
	part, err := c.Partition()
	if err != nil {
		return err
	}
	switch part {
	case P1, P2:
		p.m[part].AppendRow(c.Head.Rel, c.Body[0].Rel, c.Class[X], c.Class[Y], c.Weight)
	default:
		p.m[part].AppendRow(c.Head.Rel, c.Body[0].Rel, c.Body[1].Rel,
			c.Class[X], c.Class[Y], c.Class[Z], c.Weight)
	}
	p.clauses[part] = append(p.clauses[part], c)
	p.total++
	return nil
}

// Build partitions a clause set; it fails on the first clause that does
// not match one of the six shapes.
func Build(clauses []Clause) (*Partitions, error) {
	p := NewPartitions()
	for i, c := range clauses {
		if err := p.Add(c); err != nil {
			return nil, fmt.Errorf("clause %d: %w", i, err)
		}
	}
	return p, nil
}

// Table returns partition i's MLN table (i in 1..6).
func (p *Partitions) Table(i int) *engine.Table {
	if i < P1 || i > P6 {
		panic(fmt.Sprintf("mln: partition index %d out of range", i))
	}
	return p.m[i]
}

// Clauses returns the clauses stored in partition i, in insertion order
// (parallel to the table rows).
func (p *Partitions) Clauses(i int) []Clause {
	if i < P1 || i > P6 {
		panic(fmt.Sprintf("mln: partition index %d out of range", i))
	}
	return p.clauses[i]
}

// Total returns the number of stored clauses across all partitions.
func (p *Partitions) Total() int { return p.total }

// NonEmpty returns the indices of partitions that contain at least one
// rule; the grounding loop iterates only these.
func (p *Partitions) NonEmpty() []int {
	var out []int
	for i := P1; i <= P6; i++ {
		if p.m[i].NumRows() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Stats returns the per-partition rule counts, 1-indexed (index 0 unused).
func (p *Partitions) Stats() [NumPartitions + 1]int {
	var s [NumPartitions + 1]int
	for i := P1; i <= P6; i++ {
		s[i] = p.m[i].NumRows()
	}
	return s
}
