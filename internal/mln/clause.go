// Package mln implements the Markov logic fragment ProbKB reasons with:
// weighted first-order Horn clauses over typed binary relations, and the
// six structural-equivalence partitions of Section 4.2.2 of the paper.
//
// Symbols (relations, classes) are dictionary-encoded int32 IDs; the kb
// package owns the dictionaries. A clause's variables are canonicalized to
// X (head arg 1), Y (head arg 2), and Z (the existential body variable of
// length-2 bodies), which is exactly the naming the paper's rule shapes
// (1)–(6) use.
package mln

import (
	"errors"
	"fmt"
	"math"
)

// Var identifies a clause variable after canonicalization.
type Var int8

// The three variables a ProbKB Horn clause may use.
const (
	X Var = iota
	Y
	Z
)

// String returns the variable's conventional name.
func (v Var) String() string {
	switch v {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	default:
		return fmt.Sprintf("Var(%d)", int8(v))
	}
}

// Atom is one literal R(a, b) of a clause, over canonical variables.
type Atom struct {
	Rel  int32
	Arg1 Var
	Arg2 Var
}

// Clause is a weighted first-order Horn clause
//
//	Weight  Head ← Body[0] [, Body[1]]
//
// with per-variable class constraints. A Weight of +Inf marks a hard rule
// (Section 2.1); ProbKB routes those to quality control rather than
// inference.
type Clause struct {
	Head   Atom
	Body   []Atom
	Weight float64
	// Class[v] is the class constraint of variable v; Class[2] is unused
	// for single-atom bodies.
	Class [3]int32
}

// Hard reports whether the clause is a hard rule (infinite weight).
func (c Clause) Hard() bool { return math.IsInf(c.Weight, +1) }

// Partition IDs of the paper's six structurally equivalent rule shapes:
//
//	P1: p(x,y) ← q(x,y)
//	P2: p(x,y) ← q(y,x)
//	P3: p(x,y) ← q(z,x), r(z,y)
//	P4: p(x,y) ← q(x,z), r(z,y)
//	P5: p(x,y) ← q(z,x), r(y,z)
//	P6: p(x,y) ← q(x,z), r(y,z)
const (
	P1 = 1
	P2 = 2
	P3 = 3
	P4 = 4
	P5 = 5
	P6 = 6
	// NumPartitions is the number of structural partitions.
	NumPartitions = 6
)

// Errors returned by Canonicalize.
var (
	ErrBadHead   = errors.New("mln: head must be a binary atom over two distinct variables")
	ErrBodyArity = errors.New("mln: body must have one or two atoms")
	ErrBadShape  = errors.New("mln: clause does not match any of the six Horn shapes")
)

// Partition classifies a canonical clause into one of P1..P6.
//
// The clause must already be canonical (head = p(X, Y), body variables
// drawn from {X, Y, Z}); use Canonicalize to normalize clauses built from
// arbitrary variable layouts.
func (c Clause) Partition() (int, error) {
	if c.Head.Arg1 != X || c.Head.Arg2 != Y {
		return 0, ErrBadHead
	}
	switch len(c.Body) {
	case 1:
		b := c.Body[0]
		switch {
		case b.Arg1 == X && b.Arg2 == Y:
			return P1, nil
		case b.Arg1 == Y && b.Arg2 == X:
			return P2, nil
		}
		return 0, ErrBadShape
	case 2:
		q, r := c.Body[0], c.Body[1]
		// q must mention X, r must mention Y (Canonicalize guarantees
		// the ordering); both mention Z.
		switch {
		case q.Arg1 == Z && q.Arg2 == X && r.Arg1 == Z && r.Arg2 == Y:
			return P3, nil
		case q.Arg1 == X && q.Arg2 == Z && r.Arg1 == Z && r.Arg2 == Y:
			return P4, nil
		case q.Arg1 == Z && q.Arg2 == X && r.Arg1 == Y && r.Arg2 == Z:
			return P5, nil
		case q.Arg1 == X && q.Arg2 == Z && r.Arg1 == Y && r.Arg2 == Z:
			return P6, nil
		}
		return 0, ErrBadShape
	default:
		return 0, ErrBodyArity
	}
}

// Shape returns the canonical head and body atom patterns of partition p
// (relation fields are zero; only the variable layout matters). The
// grounding query generators derive their join structure from these
// patterns, so the six SQL shapes of Section 4.3 are written once.
func Shape(p int) (head Atom, body []Atom) {
	head = Atom{Arg1: X, Arg2: Y}
	switch p {
	case P1:
		return head, []Atom{{Arg1: X, Arg2: Y}}
	case P2:
		return head, []Atom{{Arg1: Y, Arg2: X}}
	case P3:
		return head, []Atom{{Arg1: Z, Arg2: X}, {Arg1: Z, Arg2: Y}}
	case P4:
		return head, []Atom{{Arg1: X, Arg2: Z}, {Arg1: Z, Arg2: Y}}
	case P5:
		return head, []Atom{{Arg1: Z, Arg2: X}, {Arg1: Y, Arg2: Z}}
	case P6:
		return head, []Atom{{Arg1: X, Arg2: Z}, {Arg1: Y, Arg2: Z}}
	default:
		panic(fmt.Sprintf("mln: no shape for partition %d", p))
	}
}

// RawAtom is a literal over arbitrary variable numbers, the form rule
// parsers and learners produce before canonicalization.
type RawAtom struct {
	Rel  int32
	Arg1 int
	Arg2 int
}

// Canonicalize converts an arbitrary-variable Horn clause into canonical
// form: head variables become X and Y, the remaining body variable (if
// any) becomes Z, and for two-atom bodies the atom containing X is placed
// first. classes maps the caller's variable numbers to class IDs.
func Canonicalize(head RawAtom, body []RawAtom, classes map[int]int32, weight float64) (Clause, error) {
	if head.Arg1 == head.Arg2 {
		return Clause{}, ErrBadHead
	}
	if len(body) < 1 || len(body) > 2 {
		return Clause{}, ErrBodyArity
	}
	rename := map[int]Var{head.Arg1: X, head.Arg2: Y}
	mapVar := func(v int) (Var, error) {
		if mv, ok := rename[v]; ok {
			return mv, nil
		}
		// First unseen non-head variable becomes Z; a second one is not
		// expressible in the six shapes.
		for _, used := range rename {
			if used == Z {
				return 0, ErrBadShape
			}
		}
		rename[v] = Z
		return Z, nil
	}

	c := Clause{Head: Atom{Rel: head.Rel, Arg1: X, Arg2: Y}, Weight: weight}
	for _, ra := range body {
		if ra.Arg1 == ra.Arg2 {
			return Clause{}, ErrBadShape
		}
		a1, err := mapVar(ra.Arg1)
		if err != nil {
			return Clause{}, err
		}
		a2, err := mapVar(ra.Arg2)
		if err != nil {
			return Clause{}, err
		}
		c.Body = append(c.Body, Atom{Rel: ra.Rel, Arg1: a1, Arg2: a2})
	}

	if len(c.Body) == 2 {
		// Place the X-bearing atom first, the Y-bearing atom second.
		mentions := func(a Atom, v Var) bool { return a.Arg1 == v || a.Arg2 == v }
		q, r := c.Body[0], c.Body[1]
		if !mentions(q, X) || !mentions(r, Y) {
			if mentions(r, X) && mentions(q, Y) {
				q, r = r, q
			} else {
				return Clause{}, ErrBadShape
			}
		}
		// Each body atom of a length-2 clause must pair a head variable
		// with Z.
		if !mentions(q, Z) || !mentions(r, Z) || mentions(q, Y) || mentions(r, X) {
			return Clause{}, ErrBadShape
		}
		c.Body[0], c.Body[1] = q, r
	}

	for v, mv := range rename {
		if cls, ok := classes[v]; ok {
			c.Class[mv] = cls
		}
	}
	// Validate: must now classify.
	if _, err := c.Partition(); err != nil {
		return Clause{}, err
	}
	return c, nil
}

// RelationsUsed returns the distinct relation IDs the clause mentions,
// head first.
func (c Clause) RelationsUsed() []int32 {
	out := []int32{c.Head.Rel}
	for _, b := range c.Body {
		seen := false
		for _, r := range out {
			if r == b.Rel {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, b.Rel)
		}
	}
	return out
}
