package probkb

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"probkb/internal/ingest"
	"probkb/internal/obs/journal"
)

// This file is the streaming-ingest differential battery: a fact stream
// absorbed batch by batch — under ANY batch split — must land on the
// same canonical closure and dictionaries as the t=0 oracle that had
// every fact up front, and the refreshed marginals must agree with the
// oracle's within Gibbs tolerance. The chaos leg kills the stream
// mid-flight and proves WAL recovery plus idempotent re-streaming
// resume to the same state with no torn generation.

// ingestBaseKB is the evidence and rules present before the stream
// starts. Streamed facts are always fresh born_in extractions, so an
// observed fact never collides with a derived one (live_in/located_in)
// and the dedup-keeps-first-weight rule cannot make splits diverge.
func ingestBaseKB(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.MustAddRule("1.40 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)")
	k.MustAddRule("0.52 located_in(x:City, y:City) :- born_in(z:Writer, x:City), born_in(z, y:City)")
	return k
}

// ingestStream is the firehose: born_in extractions whose closure has
// real depth (shared writers force located_in cross products).
func ingestStream() []Fact {
	cities := []string{"Vienna", "Berlin", "Prague", "Trieste"}
	writers := []string{"Freud", "Mahler", "Zweig", "Kafka", "Rilke", "Svevo"}
	var out []Fact
	rng := rand.New(rand.NewSource(42))
	for i, w := range writers {
		for j := 0; j < 2; j++ {
			c := cities[(i+j)%len(cities)]
			out = append(out, Fact{
				Rel: "born_in", X: w, XClass: "Writer", Y: c, YClass: "City",
				Probability: 0.5 + 0.4*rng.Float64(),
			})
		}
	}
	return out
}

// canonicalClosure renders an expansion's fact set order-independently:
// one line per fact, sorted. NaN probabilities (inference skipped or
// deferred) print as NaN on both sides of a diff.
func canonicalClosure(e *Expansion) string {
	facts := e.Facts()
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = fmt.Sprintf("%s(%s:%s, %s:%s) w=%v", f.Rel, f.X, f.XClass, f.Y, f.YClass, f.Probability)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// dictFingerprint renders the three dictionaries in ID order — batch
// splits must not perturb a single interned ID.
func dictFingerprint(e *Expansion) string {
	return fmt.Sprintf("rels=%v classes=%v entities=%v",
		e.kb.RelDict.Names(), e.kb.Classes.Names(), e.kb.Entities.Names())
}

// canonicalKeys is canonicalClosure without probabilities — the right
// yardstick when one side ran marginal refreshes (which fill NaNs) and
// the other didn't.
func canonicalKeys(e *Expansion) string {
	facts := e.Facts()
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = fmt.Sprintf("%s(%s:%s, %s:%s)", f.Rel, f.X, f.XClass, f.Y, f.YClass)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// splitStream cuts the stream into batches of the given sizes, cycling
// the size list until the stream is exhausted.
func splitStream(stream []Fact, sizes []int) [][]Fact {
	var out [][]Fact
	i, s := 0, 0
	for i < len(stream) {
		n := sizes[s%len(sizes)]
		s++
		if n > len(stream)-i {
			n = len(stream) - i
		}
		out = append(out, stream[i:i+n])
		i += n
	}
	return out
}

// ingestOracle is the t=0 run: every streamed fact present before the
// single expansion.
func ingestOracle(t *testing.T, cfg Config) *Expansion {
	t.Helper()
	k := ingestBaseKB(t)
	for _, f := range ingestStream() {
		k.AddFact(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.Probability)
	}
	exp, err := k.Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// absorbAll streams the batches through an Ingester synchronously (the
// pipeline's writer is serial too; calling the Absorber directly keeps
// the differential test deterministic) and returns the final pinned
// expansion.
func absorbAll(t *testing.T, in *Ingester, batches [][]Fact) *Expansion {
	t.Helper()
	for _, b := range batches {
		stream := make([]ingest.Fact, len(b))
		for i, f := range b {
			stream[i] = ingest.Fact{Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass, Probability: f.Probability}
		}
		if _, err := in.Absorb(context.Background(), stream); err != nil {
			t.Fatalf("Absorb: %v", err)
		}
	}
	pin := in.Current()
	defer pin.Unpin()
	return pin.Value()
}

// TestIngestDifferentialBatchSplits is the tentpole oracle: the same
// stream under every batch split — one huge batch, one fact at a time,
// fixed sizes, ragged mixes, random seeded splits — lands byte-
// identically on the t=0 closure and dictionaries.
func TestIngestDifferentialBatchSplits(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: false}
	oracle := ingestOracle(t, cfg)
	wantClosure := canonicalClosure(oracle)
	wantDicts := dictFingerprint(oracle)

	stream := ingestStream()
	splits := map[string][]int{
		"one-batch":  {len(stream)},
		"one-by-one": {1},
		"pairs":      {2},
		"threes":     {3},
		"ragged":     {1, 3, 2, 5},
		"head-heavy": {len(stream) - 1, 1},
		"tail-heavy": {1, len(stream) - 1},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		sizes := make([]int, 1+rng.Intn(4))
		for j := range sizes {
			sizes[j] = 1 + rng.Intn(5)
		}
		splits[fmt.Sprintf("random-%d", i)] = sizes
	}

	for name, sizes := range splits {
		t.Run(name, func(t *testing.T) {
			base, err := ingestBaseKB(t).Expand(cfg)
			if err != nil {
				t.Fatal(err)
			}
			final := absorbAll(t, NewIngester(base), splitStream(stream, sizes))
			if got := canonicalClosure(final); got != wantClosure {
				t.Errorf("closure diverged from t=0 oracle under split %v:\n--- streamed ---\n%s\n--- oracle ---\n%s", sizes, got, wantClosure)
			}
			if got := dictFingerprint(final); got != wantDicts {
				t.Errorf("dictionaries diverged under split %v:\n%s\nvs\n%s", sizes, got, wantDicts)
			}
		})
	}
}

// TestIngestMarginalsMatchOracle streams with deferred absorption, pays
// the staleness down with one final refresh, and compares every
// marginal against the t=0 oracle's. Gibbs sample paths differ when
// graph construction order differs, so agreement is within tolerance,
// not byte-exact.
func TestIngestMarginalsMatchOracle(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: true, GibbsBurnin: 200, GibbsSamples: 800, Seed: 3}
	oracle := ingestOracle(t, cfg)
	oracleP := map[string]float64{}
	for _, f := range oracle.Facts() {
		oracleP[fmt.Sprintf("%s(%s,%s)", f.Rel, f.X, f.Y)] = f.Probability
	}

	base, err := ingestBaseKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngester(base)
	// Deferred absorption leaves new derivations' marginals NaN...
	mid := absorbAll(t, in, splitStream(ingestStream(), []int{3}))
	nan := 0
	for _, f := range mid.Facts() {
		if math.IsNaN(f.Probability) {
			nan++
		}
	}
	if nan == 0 {
		t.Fatal("deferred absorption should leave stale (NaN) marginals before refresh")
	}
	// ...and the refresh fills every one of them.
	if _, err := in.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	pin := in.Current()
	defer pin.Unpin()
	final := pin.Value()
	const tol = 0.25
	checked := 0
	for _, f := range final.Facts() {
		if math.IsNaN(f.Probability) {
			t.Fatalf("stale marginal survived the refresh: %+v", f)
		}
		want, ok := oracleP[fmt.Sprintf("%s(%s,%s)", f.Rel, f.X, f.Y)]
		if !ok {
			t.Fatalf("streamed fact %+v missing from oracle", f)
		}
		if math.Abs(f.Probability-want) > tol {
			t.Errorf("marginal of %s(%s,%s) = %.3f, oracle %.3f (tol %.2f)", f.Rel, f.X, f.Y, f.Probability, want, tol)
		}
		checked++
	}
	if checked != len(oracleP) {
		t.Fatalf("checked %d facts, oracle has %d", checked, len(oracleP))
	}
}

// TestExtendWithSplitDifferential is the satellite differential: N
// facts absorbed one ExtendWith at a time vs one ExtendWith of N vs
// t=0 — identical closure, identical dictionaries, and an identical
// canonical journal for a fresh expansion over each path's final,
// canonically reordered state. Table-driven over stream seeds.
func TestExtendWithSplitDifferential(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: false}
	cities := []string{"Vienna", "Berlin", "Prague", "Zurich", "Paris"}
	writers := []string{"Freud", "Mahler", "Zweig", "Kafka", "Canetti", "Roth", "Musil"}
	for _, seed := range []int64{1, 17, 99} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var stream []Fact
			for i := 0; i < 8; i++ {
				stream = append(stream, Fact{
					Rel: "born_in",
					X:   writers[rng.Intn(len(writers))], XClass: "Writer",
					Y: cities[rng.Intn(len(cities))], YClass: "City",
					Probability: math.Round((0.5+0.45*rng.Float64())*100) / 100,
				})
			}

			expand := func() *Expansion {
				e, err := ingestBaseKB(t).Expand(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			// Path A: N×1. Path B: 1×N. Path C: t=0.
			pathA := expand()
			for _, f := range stream {
				next, err := pathA.ExtendWith([]Fact{f})
				if err != nil {
					t.Fatal(err)
				}
				pathA = next
			}
			pathB, err := expand().ExtendWith(stream)
			if err != nil {
				t.Fatal(err)
			}
			kC := ingestBaseKB(t)
			for _, f := range stream {
				kC.AddFact(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.Probability)
			}
			pathC, err := kC.Expand(cfg)
			if err != nil {
				t.Fatal(err)
			}

			wantClosure, wantDicts := canonicalClosure(pathC), dictFingerprint(pathC)
			for name, e := range map[string]*Expansion{"Nx1": pathA, "1xN": pathB} {
				if got := canonicalClosure(e); got != wantClosure {
					t.Errorf("%s closure diverged from t=0:\n%s\nvs\n%s", name, got, wantClosure)
				}
				if got := dictFingerprint(e); got != wantDicts {
					t.Errorf("%s dictionaries diverged from t=0:\n%s\nvs\n%s", name, got, wantDicts)
				}
			}

			// Canonical-journal leg: re-expand each path's final state after
			// canonical reordering; every result-determining byte — iteration
			// shapes, factor counts, query plans — must agree across paths.
			journals := map[string][]journal.Event{}
			for name, e := range map[string]*Expansion{"Nx1": pathA, "1xN": pathB, "t0": pathC} {
				re, err := reorderedKB(t, e).Expand(cfg)
				if err != nil {
					t.Fatal(err)
				}
				journals[name] = journal.Canonicalize(re.Journal().Events())
			}
			for _, name := range []string{"Nx1", "1xN"} {
				a, b := journals[name], journals["t0"]
				if len(a) != len(b) {
					t.Fatalf("%s: canonical journal has %d events, t=0 has %d", name, len(a), len(b))
				}
				for i := range a {
					ja, _ := json.Marshal(a[i])
					jb, _ := json.Marshal(b[i])
					if string(ja) != string(jb) {
						t.Fatalf("%s: canonical journal event %d differs:\n%s\nvs\n%s", name, i, ja, jb)
					}
				}
			}
		})
	}
}

// reorderedKB rebuilds an expansion's final state as a fresh KB with
// facts in canonical (sorted) order, normalizing the row-order
// differences batch splits legitimately introduce.
func reorderedKB(t *testing.T, e *Expansion) *KB {
	t.Helper()
	facts := e.Facts()
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		ka := fmt.Sprintf("%s|%s|%s|%s|%s", a.Rel, a.X, a.XClass, a.Y, a.YClass)
		kb := fmt.Sprintf("%s|%s|%s|%s|%s", b.Rel, b.X, b.XClass, b.Y, b.YClass)
		return ka < kb
	})
	k := New()
	k.MustAddRule("1.40 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)")
	k.MustAddRule("0.52 located_in(x:City, y:City) :- born_in(z:Writer, x:City), born_in(z, y:City)")
	for _, f := range facts {
		k.AddFact(f.Rel, f.X, f.XClass, f.Y, f.YClass, f.Probability)
	}
	return k
}

// TestIngestPipelineEndToEnd drives the real async pipeline — bounded
// queue, batcher, single writer, refresh policy — over the stream and
// checks the final generation matches the t=0 oracle, acks are monotone
// in generation and durable sequence, and staleness bookkeeping lands
// at zero after the close-time refresh.
func TestIngestPipelineEndToEnd(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: false}
	oracle := ingestOracle(t, cfg)
	base, err := ingestBaseKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngester(base)
	var mu sync.Mutex
	var acks []ingest.Ack
	jr := journal.New()
	p := in.Pipeline(context.Background(), ingest.Config{
		MaxBatch:     4,
		MaxDelay:     10 * time.Millisecond,
		RefreshEvery: 3,
		Journal:      jr,
		OnBatch: func(a ingest.Ack) {
			mu.Lock()
			acks = append(acks, a)
			mu.Unlock()
		},
	})
	for _, f := range ingestStream() {
		err := p.Submit(context.Background(), ingest.Fact{
			Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass, Probability: f.Probability,
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	pin := in.Current()
	defer pin.Unpin()
	// The pipeline's refresh policy fills marginals the inference-less
	// oracle leaves NaN, so compare fact identity, not weights.
	if got, want := canonicalKeys(pin.Value()), canonicalKeys(oracle); got != want {
		t.Errorf("pipeline closure diverged from t=0 oracle:\n%s\nvs\n%s", got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(acks) == 0 {
		t.Fatal("no acks observed")
	}
	total := 0
	for i, a := range acks {
		total += a.Facts
		if i > 0 {
			if a.Generation <= acks[i-1].Generation {
				t.Fatalf("ack generations not strictly monotone: %d then %d", acks[i-1].Generation, a.Generation)
			}
			if a.DurableSeq < acks[i-1].DurableSeq {
				t.Fatalf("ack durable seqs went backwards: %d then %d", acks[i-1].DurableSeq, a.DurableSeq)
			}
		}
	}
	if total != len(ingestStream()) {
		t.Fatalf("acks cover %d facts, stream has %d", total, len(ingestStream()))
	}
	st := p.Stats()
	if st.Facts != int64(len(ingestStream())) || st.QueueDepth != 0 {
		t.Fatalf("pipeline stats = %+v", st)
	}
	batchEvents := 0
	for _, ev := range jr.Events() {
		if ev.Type == journal.TypeIngestBatch {
			batchEvents++
		}
	}
	if batchEvents != len(acks) {
		t.Fatalf("journal has %d ingest_batch events, saw %d acks", batchEvents, len(acks))
	}
}

// TestIngestChaosCancelResume is the chaos leg: a persisted stream is
// killed mid-flight — a cancelled batch publishes nothing (no torn
// generation), and the store handle is dropped with no shutdown
// courtesy. Recovery replays the WAL and idempotent re-streaming of the
// whole firehose lands on exactly the t=0 closure.
func TestIngestChaosCancelResume(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: false}
	oracle := ingestOracle(t, cfg)
	stream := ingestStream()
	batches := splitStream(stream, []int{3})

	dir := filepath.Join(t.TempDir(), "store")
	st, err := CreateStore(dir, ingestBaseKB(t))
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Persist = st
	base, err := ingestBaseKB(t).Expand(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngester(base)

	// Absorb the first half of the firehose.
	half := batches[:len(batches)/2]
	absorbAll(t, in, half)
	genBefore := in.Generation()

	// Kill: the next batch's context is already cancelled. The absorb
	// must fail without publishing — readers never see a torn
	// generation.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	toIngest := make([]ingest.Fact, len(batches[len(batches)/2]))
	for i, f := range batches[len(batches)/2] {
		toIngest[i] = ingest.Fact{Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass, Probability: f.Probability}
	}
	if _, err := in.Absorb(cancelled, toIngest); err == nil {
		t.Fatal("cancelled absorb succeeded")
	}
	if got := in.Generation(); got != genBefore {
		t.Fatalf("cancelled absorb published generation %d (was %d): torn generation", got, genBefore)
	}
	// Crash: no Close, no Checkpoint. Recovery gets snapshot + WAL.
	walBefore := st.WALRecords()
	if walBefore == 0 {
		t.Fatal("persisted absorbs appended no WAL records")
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recovered := re.KB()
	// The recovered KB carries the durable prefix; re-expand it and
	// re-stream the ENTIRE firehose — absorption dedups, so replaying
	// already-durable facts is a no-op and the tail fills in.
	rcfg := cfg
	rcfg.Persist = re
	rbase, err := recovered.Expand(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rin := NewIngester(rbase)
	final := absorbAll(t, rin, batches)
	if got, want := canonicalClosure(final), canonicalClosure(oracle); got != want {
		t.Errorf("post-recovery closure diverged from t=0 oracle:\n%s\nvs\n%s", got, want)
	}
	if re.Err() != nil {
		t.Fatalf("store error latched during resume: %v", re.Err())
	}
}
