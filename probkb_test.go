package probkb

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// paperKB builds the Table 1 running example through the public API.
func paperKB(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "New_York_City", "City", 0.96)
	k.AddFact("born_in", "Ruth_Gruber", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	k.MustAddRule("1.53 live_in(x:Writer, y:City) :- born_in(x:Writer, y:City)")
	k.MustAddRule("0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x:Place), live_in(z, y:City)")
	k.MustAddRule("0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x:Place), born_in(z, y:City)")
	return k
}

func TestQuickstartPipeline(t *testing.T) {
	k := New()
	if !k.AddFact("rich_in", "kale", "Food", "calcium", "Nutrient", 0.9) {
		t.Fatal("fresh fact reported as duplicate")
	}
	if k.AddFact("rich_in", "kale", "Food", "calcium", "Nutrient", 0.8) {
		t.Fatal("duplicate fact reported as fresh")
	}
	k.AddFact("prevents", "calcium", "Nutrient", "osteoporosis", "Disease", 0.8)
	k.MustAddRule("1.1 prevents(x:Food, y:Disease) :- rich_in(x:Food, z:Nutrient), prevents(z:Nutrient, y:Disease)")

	exp, err := k.Expand(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inferred := exp.InferredFacts()
	if len(inferred) != 1 {
		t.Fatalf("inferred = %+v, want the kale fact", inferred)
	}
	f := inferred[0]
	if f.Rel != "prevents" || f.X != "kale" || f.Y != "osteoporosis" {
		t.Fatalf("inferred fact = %+v", f)
	}
	if math.IsNaN(f.Probability) || f.Probability <= 0 || f.Probability >= 1 {
		t.Fatalf("probability = %v, want (0,1)", f.Probability)
	}
	if !strings.Contains(f.String(), "prevents(kale:Food") {
		t.Fatalf("fact string = %q", f.String())
	}
}

func TestExpandStatsAndIterations(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.BaseFacts != 2 || st.InferredFacts != 3 || st.TotalFacts != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Converged || st.Iterations < 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Factors != 6 {
		t.Fatalf("factors = %d, want 6", st.Factors)
	}
	iters := exp.PerIteration()
	if len(iters) != st.Iterations || iters[0].NewFacts != 3 {
		t.Fatalf("per-iteration = %+v", iters)
	}
	// Without inference, probabilities of inferred facts are NaN.
	for _, f := range exp.InferredFacts() {
		if !math.IsNaN(f.Probability) {
			t.Fatalf("inferred fact has probability without inference: %+v", f)
		}
	}
}

func TestExpandAllEnginesAgree(t *testing.T) {
	for _, eng := range []Engine{SingleNode, Baseline, MPP, MPPNoViews} {
		k := paperKB(t)
		exp, err := k.Expand(Config{Engine: eng, Segments: 2, RunInference: false})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if got := exp.Stats().TotalFacts; got != 5 {
			t.Fatalf("%v: total facts = %d, want 5", eng, got)
		}
	}
	if SingleNode.String() != "ProbKB" || Baseline.String() != "Tuffy-T" ||
		MPP.String() != "ProbKB-p" || MPPNoViews.String() != "ProbKB-pn" {
		t.Fatal("engine names wrong")
	}
}

func TestExpandUnknownEngine(t *testing.T) {
	k := paperKB(t)
	if _, err := k.Expand(Config{Engine: Engine(99)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestFindAndExplain(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: true, GibbsBurnin: 20, GibbsSamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	hits := exp.Find("located_in", "", "")
	if len(hits) != 1 || hits[0].X != "Brooklyn" {
		t.Fatalf("Find = %+v", hits)
	}
	text, err := exp.Explain("located_in", "Brooklyn", "New_York_City", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "born_in") || !strings.Contains(text, "derived by") {
		t.Fatalf("explain:\n%s", text)
	}
	if _, err := exp.Explain("located_in", "Nowhere", "NYC", 3); err == nil {
		t.Fatal("explaining a missing fact should error")
	}
	v, f, s, err := exp.FactorGraphStats()
	if err != nil || v != 5 || f != 6 || s != 2 {
		t.Fatalf("factor graph stats = %d %d %d %v", v, f, s, err)
	}
}

func TestConstraintsInExpand(t *testing.T) {
	k := New()
	k.AddFact("born_in", "Mandel", "Person", "Berlin", "City", 0.9)
	k.AddFact("born_in", "Mandel", "Person", "Baltimore", "City", 0.9)
	k.AddFact("born_in", "Freud", "Person", "Vienna", "City", 0.9)
	k.MustAddRule("0.5 located_in(x:City, y:City) :- born_in(z:Person, x:City), born_in(z, y:City)")
	if err := k.AddConstraint("born_in", TypeI, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.AddConstraint("no_such_rel", TypeI, 1); err == nil {
		t.Fatal("constraint over unknown relation accepted")
	}

	exp, err := k.Expand(Config{Engine: SingleNode, ApplyConstraints: true, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range exp.Facts() {
		if f.X == "Mandel" || f.X == "Berlin" || f.X == "Baltimore" {
			t.Fatalf("ambiguous-entity fact survived: %+v", f)
		}
	}
	// Without constraints the bogus located_in appears; cap iterations.
	exp2, err := k.Expand(Config{Engine: SingleNode, MaxIterations: 3, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp2.Find("located_in", "Berlin", "Baltimore")) == 0 {
		t.Fatal("control run should infer the bogus fact")
	}
}

func TestConstraintInformedCleaningInExpand(t *testing.T) {
	// A wrong rule floods the Type II functional capital_of; a benign
	// rule has identical raw support. Constraint-informed cleaning keeps
	// the benign one.
	k := New()
	k.AddFact("located_in", "Lyon", "City", "France", "Country", 0.9)
	k.AddFact("located_in", "Nice", "City", "France", "Country", 0.9)
	k.AddFact("capital_of", "Paris", "City", "France", "Country", 0.9)
	k.AddFact("visited", "A", "Person", "X", "City", 0.9)
	k.MustAddRule("0.9 capital_of(x:City, y:Country) :- located_in(x:City, y:Country)")
	k.MustAddRule("0.9 liked(x:Person, y:City) :- visited(x:Person, y:City)")
	if err := k.AddConstraint("capital_of", TypeII, 1); err != nil {
		t.Fatal(err)
	}

	exp, err := k.Expand(Config{
		Engine:                     SingleNode,
		RuleCleanTheta:             0.5,
		ConstraintInformedCleaning: true,
		RunInference:               false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Find("capital_of", "Lyon", "France")) != 0 {
		t.Fatal("constraint-implicated rule survived cleaning")
	}
	if len(exp.Find("liked", "A", "X")) != 1 {
		t.Fatal("benign rule was cleaned away")
	}
}

func TestRuleCleaningInExpand(t *testing.T) {
	k := New()
	k.AddFact("r1", "a", "A", "b", "B", 0.9)
	k.AddFact("r2", "a", "A", "b", "B", 0.9)
	k.AddFact("r1", "c", "A", "d", "B", 0.9)
	k.AddFact("r2", "c", "A", "d", "B", 0.9)
	k.AddFact("r3", "e", "A", "f", "B", 0.9)
	k.MustAddRule("1.0 r2(x:A, y:B) :- r1(x:A, y:B)") // supported
	k.MustAddRule("1.0 r4(x:A, y:B) :- r3(x:A, y:B)") // junk
	exp, err := k.Expand(Config{Engine: SingleNode, RuleCleanTheta: 0.5, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Find("r4", "", "")) != 0 {
		t.Fatal("cleaned rule still fired")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := paperKB(t)
	dir := filepath.Join(t.TempDir(), "kb")
	if err := k.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != k.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", loaded.Stats(), k.Stats())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading missing dir should fail")
	}
	// Binary snapshot: Load auto-detects the file format.
	snap := filepath.Join(t.TempDir(), "kb.pkb")
	if err := k.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	fromSnap, err := Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	if fromSnap.Stats() != k.Stats() {
		t.Fatalf("snapshot stats changed: %+v vs %+v", fromSnap.Stats(), k.Stats())
	}
	// The snapshot KB expands identically.
	exp, err := fromSnap.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats().TotalFacts != 5 {
		t.Fatalf("snapshot expansion facts = %d", exp.Stats().TotalFacts)
	}
}

func TestToKBChaining(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: true, GibbsBurnin: 20, GibbsSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	next := exp.ToKB()
	if next.Stats().Facts != 5 {
		t.Fatalf("materialized KB facts = %d, want 5", next.Stats().Facts)
	}
	// A second expansion over the materialized KB converges immediately.
	exp2, err := next.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if exp2.Stats().InferredFacts != 0 {
		t.Fatal("re-expansion should add nothing")
	}
}

func TestSynthesize(t *testing.T) {
	k, truth, err := Synthesize(0.004, 11)
	if err != nil {
		t.Fatal(err)
	}
	if k.Stats().Facts == 0 || truth.WorldSize() == 0 {
		t.Fatal("empty synthetic corpus")
	}
	exp, err := k.Expand(Config{Engine: SingleNode, MaxIterations: 3, ApplyConstraints: true, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	p, correct, total := truth.Precision(exp)
	if total > 0 && (p < 0 || p > 1 || correct > total) {
		t.Fatalf("precision accounting broken: %v %d/%d", p, correct, total)
	}
	// Judge is consistent with itself on observed facts.
	judged := 0
	for _, f := range exp.Facts() {
		if truth.Judge(f) {
			judged++
		}
	}
	if judged == 0 {
		t.Fatal("oracle judges everything false")
	}
	if _, _, err := Synthesize(0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if truth.Judge(Fact{Rel: "nope", X: "a", XClass: "A", Y: "b", YClass: "B"}) {
		t.Fatal("unknown symbols judged true")
	}
}

func TestExtendWith(t *testing.T) {
	k := New()
	k.AddFact("born_in", "RG", "Writer", "Brooklyn", "Place", 0.93)
	k.MustAddRule("1.40 live_in(x:Writer, y:Place) :- born_in(x:Writer, y:Place)")
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats().InferredFacts != 1 {
		t.Fatalf("initial inferred = %d", exp.Stats().InferredFacts)
	}

	// A new extraction arrives; the incremental round derives only from it.
	next, err := exp.ExtendWith([]Fact{{
		Rel: "born_in", X: "Freud", XClass: "Writer", Y: "Vienna", YClass: "Place", Probability: 0.9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := next.Stats()
	if st.InferredFacts != 1 {
		t.Fatalf("incremental inferred = %d, want 1 (live_in Freud)", st.InferredFacts)
	}
	if len(next.Find("live_in", "Freud", "Vienna")) != 1 {
		t.Fatal("incremental derivation missing")
	}
	// The old derivation is still present, now as a base fact.
	if len(next.Find("live_in", "RG", "Brooklyn")) != 1 {
		t.Fatal("prior derivation lost")
	}

	// Extending a capped (non-converged) expansion refuses.
	capped, err := paperKB(t).Expand(Config{Engine: SingleNode, MaxIterations: 1, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capped.ExtendWith(nil); err == nil {
		t.Fatal("ExtendWith accepted a non-converged prior")
	}
}

func TestSaveFactorGraph(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "fg")
	if err := exp.SaveFactorGraph(dir); err != nil {
		t.Fatal(err)
	}
	vars, err := os.ReadFile(filepath.Join(dir, "variables.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	factors, err := os.ReadFile(filepath.Join(dir, "factors.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	varLines := strings.Count(string(vars), "\n")
	factorLines := strings.Count(string(factors), "\n")
	if varLines != 5 || factorLines != 6 {
		t.Fatalf("export sizes: %d vars, %d factors; want 5, 6", varLines, factorLines)
	}
	if !strings.Contains(string(vars), "born_in(Ruth_Gruber:Writer") {
		t.Fatalf("variables.tsv missing rendering:\n%s", vars)
	}
	// Inferred variables are unobserved with null weight.
	if !strings.Contains(string(vars), "\tnull\t0\t") {
		t.Fatalf("variables.tsv missing inferred rows:\n%s", vars)
	}
	// Singleton factors carry nulls in I2/I3.
	if !strings.Contains(string(factors), "\tnull\tnull\t") {
		t.Fatalf("factors.tsv missing singletons:\n%s", factors)
	}
}

func TestMAPWorldAndDiagnostics(t *testing.T) {
	k := paperKB(t)
	exp, err := k.Expand(Config{Engine: SingleNode, RunInference: true, GibbsBurnin: 100, GibbsSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	world, score, err := exp.MAPWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	// With strong positive weights everywhere, the MAP world holds every
	// fact (score = sum of all weights).
	if len(world) != 5 {
		t.Fatalf("MAP world has %d facts, want 5", len(world))
	}
	want := 0.96 + 0.93 + 1.40 + 1.53 + 0.32 + 0.52
	if math.Abs(score-want) > 1e-9 {
		t.Fatalf("MAP score = %v, want %v", score, want)
	}
	maxRHat, converged, err := exp.ConvergenceDiagnostics(3)
	if err != nil {
		t.Fatal(err)
	}
	if !converged || maxRHat > 1.1 {
		t.Fatalf("well-behaved expansion unconverged: R̂ = %v", maxRHat)
	}
}

func TestQuerySQL(t *testing.T) {
	k := paperKB(t)
	// The paper's Query 1-1, verbatim, through the public API.
	res, err := k.QuerySQL(`
		SELECT M1.R1 AS R, T.x AS x, T.C1 AS C1, T.y AS y, T.C2 AS C2
		FROM M1 JOIN T ON M1.R2 = T.R AND M1.C1 = T.C1 AND M1.C2 = T.C2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 5 {
		t.Fatalf("Query 1-1 result: %d rows × %d cols", len(res.Rows), len(res.Columns))
	}
	rendered := res.String()
	lines := strings.Split(rendered, "\n")
	if len(lines) < 4 || !strings.HasPrefix(lines[0], "R") || !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("rendering:\n%s", rendered)
	}

	// Dictionary join: resolve entity names in SQL.
	res2, err := k.QuerySQL("SELECT DE.name FROM T JOIN DE ON T.x = DE.id WHERE T.w > 0.95")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "Ruth_Gruber" {
		t.Fatalf("dictionary join: %+v", res2.Rows)
	}

	if _, err := k.QuerySQL("SELECT nope FROM T"); err == nil {
		t.Fatal("bad query accepted")
	}

	plan, err := k.ExplainSQL("SELECT T.I FROM T")
	if err != nil || !strings.Contains(plan, "Seq Scan on T") {
		t.Fatalf("explain: %q %v", plan, err)
	}
}

func TestMustAddRulePanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddRule on garbage did not panic")
		}
	}()
	k.MustAddRule("not a rule")
}
