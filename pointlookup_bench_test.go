// Point-lookup microbenchmarks: Explain and Find are the hot paths a
// lookup service hammers, and both used to rescan the fact table per
// call (Explain even per rendered node). These benchmarks exist to keep
// them honest: Explain is O(tree + one indexing pass) and Find resolves
// names to IDs once instead of rendering every row.
package probkb_test

import (
	"context"
	"sync"
	"testing"

	"probkb"
)

var (
	lookupOnce sync.Once
	lookupExp  *probkb.Expansion
	lookupFact probkb.Fact
)

// lookupExpansion expands (once) a synthetic corpus big enough that a
// per-row rescan is visibly quadratic.
func lookupExpansion(b *testing.B) (*probkb.Expansion, probkb.Fact) {
	b.Helper()
	lookupOnce.Do(func() {
		k, _, err := probkb.Synthesize(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, RunInference: false})
		if err != nil {
			b.Fatal(err)
		}
		inferred := exp.InferredFacts()
		if len(inferred) == 0 {
			b.Fatal("corpus derived nothing")
		}
		lookupExp, lookupFact = exp, inferred[len(inferred)/2]
	})
	return lookupExp, lookupFact
}

func BenchmarkExplain(b *testing.B) {
	exp, f := lookupExpansion(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Explain(f.Rel, f.X, f.Y, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFind(b *testing.B) {
	exp, f := lookupExpansion(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := exp.Find(f.Rel, f.X, f.Y); len(got) == 0 {
			b.Fatal("fact not found")
		}
	}
}

func BenchmarkFindWildcardRel(b *testing.B) {
	exp, f := lookupExpansion(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := exp.Find(f.Rel, "", ""); len(got) == 0 {
			b.Fatal("relation not found")
		}
	}
}

func BenchmarkQueryLocalCold(b *testing.B) {
	exp, f := lookupExpansion(b)
	q := probkb.PointQuery{Rel: f.Rel, X: f.X, Y: f.Y, Burnin: 20, Samples: 100, NoCache: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.QueryLocal(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryLocalCached(b *testing.B) {
	exp, f := lookupExpansion(b)
	q := probkb.PointQuery{Rel: f.Rel, X: f.X, Y: f.Y, Burnin: 20, Samples: 100}
	if _, err := exp.QueryLocal(context.Background(), q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.QueryLocal(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}
