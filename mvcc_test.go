package probkb

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// This file is the MVCC differential battery at the API level: answers
// served from a pinned generation must be byte-identical to a serial
// replay oracle, no matter how many ExtendWith rounds race the reads.
// (internal/proptest has the randomized-interleaving property test over
// the raw fork/epoch machinery; this one proves the full query surface
// — Find, QueryLocal, SQL — is what freezes.)

// mvccBatches are the incremental rounds the oracle and the concurrent
// leg both apply, in order.
func mvccBatches() [][]Fact {
	return [][]Fact{
		{{Rel: "born_in", X: "Freud", XClass: "Writer", Y: "Vienna", YClass: "Place", Probability: 0.9}},
		{{Rel: "born_in", X: "Mahler", XClass: "Writer", Y: "Vienna", YClass: "Place", Probability: 0.85},
			{Rel: "located_in", X: "Vienna", XClass: "Place", Y: "Austria", YClass: "Place", Probability: 0.99}},
		{{Rel: "born_in", X: "Zweig", XClass: "Writer", Y: "Vienna", YClass: "Place", Probability: 0.8}},
	}
}

// observeGeneration renders everything a reader can ask one generation
// — the full fact listing, point-query marginals (inference skipped, so
// the bytes are deterministic), and a SQL aggregate over the base table
// — into one canonical byte string.
func observeGeneration(t *testing.T, exp *Expansion) []byte {
	t.Helper()
	var out struct {
		Facts []Fact
		Atoms []Marginal
		SQL   *QueryResult
	}
	out.Facts = exp.Facts()
	for _, atom := range [][3]string{
		{"live_in", "Freud", "Vienna"},
		{"live_in", "Mahler", "Vienna"},
		{"born_in", "Ruth_Gruber", "New_York_City"},
		{"live_in", "nobody", "nowhere"},
	} {
		m, err := exp.QueryLocal(context.Background(), PointQuery{
			Rel: atom[0], X: atom[1], Y: atom[2], Samples: -1, NoCache: true,
		})
		if err != nil {
			t.Fatalf("QueryLocal(%v): %v", atom, err)
		}
		// Timing and cache-coalescing metadata legitimately vary run to
		// run; the answer itself must not.
		m.Elapsed, m.Cached, m.Coalesced, m.Generation = 0, false, false, 0
		out.Atoms = append(out.Atoms, m)
	}
	res, err := exp.KB().QuerySQL("SELECT T.R, COUNT(*) AS n FROM T GROUP BY T.R")
	if err != nil {
		t.Fatalf("QuerySQL: %v", err)
	}
	out.SQL = res
	// fmt rather than JSON: skipped-inference marginals are NaN, which
	// prints fine but does not marshal.
	return []byte(fmt.Sprintf("%+v", out))
}

// TestMVCCDifferentialOracle races readers of generation N against
// ExtendWith building N+1, N+2, N+3, then compares every generation's
// observable answers byte-for-byte against a serial replay that never
// had any concurrency.
func TestMVCCDifferentialOracle(t *testing.T) {
	cfg := Config{Engine: SingleNode, RunInference: false}

	// Serial oracle: the same chain with no readers racing it.
	oracleExp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := [][]byte{observeGeneration(t, oracleExp)}
	serial := oracleExp
	for _, batch := range mvccBatches() {
		if serial, err = serial.ExtendWith(batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, observeGeneration(t, serial))
	}

	// Concurrent leg: readers hammer each already-published generation
	// while the writer builds the next one on its fork.
	exp, err := paperKB(t).Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gens := []*Expansion{exp}
	for gen, batch := range mvccBatches() {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		errCh := make(chan error, 8)
		// Readers pin every generation published so far — the oldest one
		// included, long after the writer has moved past it.
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					g := (r + i) % len(gens)
					got := observeGeneration(t, gens[g])
					if string(got) != string(oracle[g]) {
						select {
						case errCh <- fmt.Errorf("generation %d drifted under a concurrent ExtendWith:\n got %s\nwant %s", g, got, oracle[g]):
						default:
						}
						return
					}
				}
			}(r)
		}
		next, err := exp.ExtendWith(batch)
		close(stop)
		wg.Wait()
		select {
		case rerr := <-errCh:
			t.Fatal(rerr)
		default:
		}
		if err != nil {
			t.Fatalf("ExtendWith round %d: %v", gen, err)
		}
		exp = next
		gens = append(gens, next)
	}

	// Every generation, old and new, still answers exactly like the
	// oracle after the dust settles.
	for g, e := range gens {
		if got := observeGeneration(t, e); string(got) != string(oracle[g]) {
			t.Fatalf("generation %d final answers diverge from serial replay:\n got %s\nwant %s", g, got, oracle[g])
		}
	}
}

// TestMVCCFailedExtendLeavesGenerationIntact: a build that dies (here:
// cancelled before grounding) must leave the receiver generation
// serving exactly its old answers — the "failed builds are discarded"
// half of the publication contract.
func TestMVCCFailedExtendLeavesGenerationIntact(t *testing.T) {
	exp, err := paperKB(t).Expand(Config{Engine: SingleNode, RunInference: false})
	if err != nil {
		t.Fatal(err)
	}
	before := observeGeneration(t, exp)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := exp.ExtendWithContext(ctx, mvccBatches()[0]); err == nil {
		t.Fatal("cancelled ExtendWith reported success")
	}
	if got := observeGeneration(t, exp); string(got) != string(before) {
		t.Fatalf("failed ExtendWith mutated the receiver generation:\n got %s\nwant %s", got, before)
	}
}
