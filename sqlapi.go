package probkb

import (
	"context"
	"fmt"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
	"probkb/internal/obs/journal"
	"probkb/internal/sql"
)

// sqlCatalog builds the relational catalog of Section 4.2 — T (facts),
// TC (class membership), TR (relation signatures), FC (functional
// constraints), the MLN partition tables M1..M6, and the dictionary
// tables DE/DC/DR.
func (k *KB) sqlCatalog() (*engine.Catalog, error) {
	parts, err := k.inner.MLNPartitions()
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	cat.Put(k.inner.FactsTable())
	cat.Put(k.inner.ClassTable())
	cat.Put(k.inner.RelationTable())
	cat.Put(k.inner.ConstraintsTable())
	for i := mln.P1; i <= mln.P6; i++ {
		cat.Put(parts.Table(i))
	}
	cat.Put(dictTable("DE", k.inner.Entities.Names()))
	cat.Put(dictTable("DC", k.inner.Classes.Names()))
	cat.Put(dictTable("DR", k.inner.RelDict.Names()))
	return cat, nil
}

// sqlDB wraps the catalog in the single-node SQL executor.
func (k *KB) sqlDB() (*sql.DB, error) {
	cat, err := k.sqlCatalog()
	if err != nil {
		return nil, err
	}
	return sql.NewDB(cat), nil
}

func dictTable(name string, names []string) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(
		engine.C("id", engine.Int32),
		engine.C("name", engine.String),
	))
	for id, s := range names {
		t.AppendRow(int32(id), s)
	}
	return t
}

// QueryResult is a SQL result rendered for display.
type QueryResult struct {
	Columns []string
	Rows    [][]string
}

// QuerySQL runs a SELECT against the KB's relational representation
// (Section 4.2 of the paper): tables T, TC, TR, FC, M1..M6, DE. The
// paper's grounding queries run verbatim. Results render as strings;
// this entry point exists for exploration and tooling, not hot paths.
func (k *KB) QuerySQL(query string) (*QueryResult, error) {
	return k.QuerySQLContext(context.Background(), query)
}

// QuerySQLContext is QuerySQL with cancellation: the context is
// consulted at every operator boundary, and a cancelled query returns a
// *PartialError with Phase "sql" (Partial nil) that unwraps to the
// context error — the same contract ExpandContext honors.
func (k *KB) QuerySQLContext(ctx context.Context, query string) (*QueryResult, error) {
	res, _, _, err := k.QuerySQLAnalyze(ctx, query)
	return res, err
}

// QuerySQLAnalyze runs a SELECT and also returns its EXPLAIN ANALYZE
// rendering (estimates next to actuals) and the captured plan tree in
// journal form, for /sql?analyze=1 responses and slow-query records.
func (k *KB) QuerySQLAnalyze(ctx context.Context, query string) (*QueryResult, string, *journal.PlanNode, error) {
	db, err := k.sqlDB()
	if err != nil {
		return nil, "", nil, err
	}
	out, plan, err := db.QueryAnalyzeContext(ctx, query)
	if err != nil {
		return nil, "", nil, wrapSQLErr(err)
	}
	text := engine.ExplainAnalyze(plan)
	pn := journal.Capture(plan)
	return renderResult(out), text, &pn, nil
}

// wrapSQLErr turns a context cancellation surfaced by a query into the
// PartialError contract; other errors pass through.
func wrapSQLErr(err error) error {
	if isCtxErr(err) {
		return &PartialError{Phase: "sql", Err: err}
	}
	return err
}

// renderResult renders an engine table as display strings.
func renderResult(out *engine.Table) *QueryResult {
	res := &QueryResult{}
	for _, c := range out.Schema().Cols {
		res.Columns = append(res.Columns, c.Name)
	}
	for r := 0; r < out.NumRows(); r++ {
		row := make([]string, len(res.Columns))
		for c := range res.Columns {
			row[c] = out.ValueString(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// QueryDistSQL runs a SELECT as a distributed plan over a simulated
// MPP cluster with the given number of segments (0 means 4). The facts
// table T is hash-distributed by its fact identifier; every other
// table is replicated. Planning is strictly motion-free, so a join
// whose inputs are not collocated returns an error instead of shipping
// rows — and, since the MPP layer defers construction-time violations
// to execution, instead of panicking.
func (k *KB) QueryDistSQL(query string, segments int) (*QueryResult, error) {
	return k.QueryDistSQLContext(context.Background(), query, segments)
}

// QueryDistSQLContext is QueryDistSQL with cancellation; like
// QuerySQLContext, a cancelled run returns a *PartialError with Phase
// "sql". The cluster is per-request, so installing the context on it is
// safe.
func (k *KB) QueryDistSQLContext(ctx context.Context, query string, segments int) (*QueryResult, error) {
	res, _, _, err := k.QueryDistSQLAnalyze(ctx, query, segments)
	return res, err
}

// QueryDistSQLAnalyze is QuerySQLAnalyze for distributed plans: the
// rendering includes per-segment row counts, motion volumes, and
// segment-task retries.
func (k *KB) QueryDistSQLAnalyze(ctx context.Context, query string, segments int) (*QueryResult, string, *journal.PlanNode, error) {
	cat, err := k.sqlCatalog()
	if err != nil {
		return nil, "", nil, err
	}
	if segments <= 0 {
		segments = 4
	}
	cluster := mpp.NewCluster(segments)
	db := sql.NewDistDB(cat, cluster, map[string][]int{"T": {kb.TPiI}})
	out, plan, err := db.QueryAnalyzeContext(ctx, query)
	if err != nil {
		return nil, "", nil, wrapSQLErr(err)
	}
	text := mpp.ExplainAnalyze(plan)
	pn := journal.Capture(plan)
	return renderResult(out), text, &pn, nil
}

// ExplainSQL plans and runs a SELECT, returning the annotated physical
// plan (operator tree with per-node rows and self time).
func (k *KB) ExplainSQL(query string) (string, error) {
	db, err := k.sqlDB()
	if err != nil {
		return "", err
	}
	return db.Explain(query)
}

// ExplainAnalyzeSQL runs a SELECT and returns its EXPLAIN ANALYZE
// rendering: actual rows, time, and memory per operator, with the
// optimizer's cardinality estimate (and how far off it was) alongside.
func (k *KB) ExplainAnalyzeSQL(ctx context.Context, query string) (string, error) {
	_, text, _, err := k.QuerySQLAnalyze(ctx, query)
	return text, err
}

// String renders a result as an aligned table.
func (r *QueryResult) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b []byte
	appendRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b = append(b, ' ', '|', ' ')
			}
			b = append(b, fmt.Sprintf("%-*s", widths[i], v)...)
		}
		b = append(b, '\n')
	}
	appendRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	appendRow(sep)
	for _, row := range r.Rows {
		appendRow(row)
	}
	return string(b)
}
