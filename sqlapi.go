package probkb

import (
	"fmt"

	"probkb/internal/engine"
	"probkb/internal/mln"
	"probkb/internal/sql"
)

// sqlDB builds the relational catalog of Section 4.2 — T (facts), TC
// (class membership), TR (relation signatures), FC (functional
// constraints), the MLN partition tables M1..M6, and the dictionary
// tables DE/DC/DR — and wraps it in a SQL executor.
func (k *KB) sqlDB() (*sql.DB, error) {
	parts, err := k.inner.MLNPartitions()
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	cat.Put(k.inner.FactsTable())
	cat.Put(k.inner.ClassTable())
	cat.Put(k.inner.RelationTable())
	cat.Put(k.inner.ConstraintsTable())
	for i := mln.P1; i <= mln.P6; i++ {
		cat.Put(parts.Table(i))
	}
	cat.Put(dictTable("DE", k.inner.Entities.Names()))
	cat.Put(dictTable("DC", k.inner.Classes.Names()))
	cat.Put(dictTable("DR", k.inner.RelDict.Names()))
	return sql.NewDB(cat), nil
}

func dictTable(name string, names []string) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(
		engine.C("id", engine.Int32),
		engine.C("name", engine.String),
	))
	for id, s := range names {
		t.AppendRow(int32(id), s)
	}
	return t
}

// QueryResult is a SQL result rendered for display.
type QueryResult struct {
	Columns []string
	Rows    [][]string
}

// QuerySQL runs a SELECT against the KB's relational representation
// (Section 4.2 of the paper): tables T, TC, TR, FC, M1..M6, DE. The
// paper's grounding queries run verbatim. Results render as strings;
// this entry point exists for exploration and tooling, not hot paths.
func (k *KB) QuerySQL(query string) (*QueryResult, error) {
	db, err := k.sqlDB()
	if err != nil {
		return nil, err
	}
	out, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	for _, c := range out.Schema().Cols {
		res.Columns = append(res.Columns, c.Name)
	}
	for r := 0; r < out.NumRows(); r++ {
		row := make([]string, len(res.Columns))
		for c := range res.Columns {
			row[c] = out.ValueString(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ExplainSQL plans and runs a SELECT, returning the annotated physical
// plan (operator tree with per-node rows and self time).
func (k *KB) ExplainSQL(query string) (string, error) {
	db, err := k.sqlDB()
	if err != nil {
		return "", err
	}
	return db.Explain(query)
}

// String renders a result as an aligned table.
func (r *QueryResult) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b []byte
	appendRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b = append(b, ' ', '|', ' ')
			}
			b = append(b, fmt.Sprintf("%-*s", widths[i], v)...)
		}
		b = append(b, '\n')
	}
	appendRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	appendRow(sep)
	for _, row := range r.Rows {
		appendRow(row)
	}
	return string(b)
}
