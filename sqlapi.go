package probkb

import (
	"fmt"

	"probkb/internal/engine"
	"probkb/internal/kb"
	"probkb/internal/mln"
	"probkb/internal/mpp"
	"probkb/internal/sql"
)

// sqlCatalog builds the relational catalog of Section 4.2 — T (facts),
// TC (class membership), TR (relation signatures), FC (functional
// constraints), the MLN partition tables M1..M6, and the dictionary
// tables DE/DC/DR.
func (k *KB) sqlCatalog() (*engine.Catalog, error) {
	parts, err := k.inner.MLNPartitions()
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	cat.Put(k.inner.FactsTable())
	cat.Put(k.inner.ClassTable())
	cat.Put(k.inner.RelationTable())
	cat.Put(k.inner.ConstraintsTable())
	for i := mln.P1; i <= mln.P6; i++ {
		cat.Put(parts.Table(i))
	}
	cat.Put(dictTable("DE", k.inner.Entities.Names()))
	cat.Put(dictTable("DC", k.inner.Classes.Names()))
	cat.Put(dictTable("DR", k.inner.RelDict.Names()))
	return cat, nil
}

// sqlDB wraps the catalog in the single-node SQL executor.
func (k *KB) sqlDB() (*sql.DB, error) {
	cat, err := k.sqlCatalog()
	if err != nil {
		return nil, err
	}
	return sql.NewDB(cat), nil
}

func dictTable(name string, names []string) *engine.Table {
	t := engine.NewTable(name, engine.NewSchema(
		engine.C("id", engine.Int32),
		engine.C("name", engine.String),
	))
	for id, s := range names {
		t.AppendRow(int32(id), s)
	}
	return t
}

// QueryResult is a SQL result rendered for display.
type QueryResult struct {
	Columns []string
	Rows    [][]string
}

// QuerySQL runs a SELECT against the KB's relational representation
// (Section 4.2 of the paper): tables T, TC, TR, FC, M1..M6, DE. The
// paper's grounding queries run verbatim. Results render as strings;
// this entry point exists for exploration and tooling, not hot paths.
func (k *KB) QuerySQL(query string) (*QueryResult, error) {
	db, err := k.sqlDB()
	if err != nil {
		return nil, err
	}
	out, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	return renderResult(out), nil
}

// renderResult renders an engine table as display strings.
func renderResult(out *engine.Table) *QueryResult {
	res := &QueryResult{}
	for _, c := range out.Schema().Cols {
		res.Columns = append(res.Columns, c.Name)
	}
	for r := 0; r < out.NumRows(); r++ {
		row := make([]string, len(res.Columns))
		for c := range res.Columns {
			row[c] = out.ValueString(r, c)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// QueryDistSQL runs a SELECT as a distributed plan over a simulated
// MPP cluster with the given number of segments (0 means 4). The facts
// table T is hash-distributed by its fact identifier; every other
// table is replicated. Planning is strictly motion-free, so a join
// whose inputs are not collocated returns an error instead of shipping
// rows — and, since the MPP layer defers construction-time violations
// to execution, instead of panicking.
func (k *KB) QueryDistSQL(query string, segments int) (*QueryResult, error) {
	cat, err := k.sqlCatalog()
	if err != nil {
		return nil, err
	}
	if segments <= 0 {
		segments = 4
	}
	cluster := mpp.NewCluster(segments)
	db := sql.NewDistDB(cat, cluster, map[string][]int{"T": {kb.TPiI}})
	out, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	return renderResult(out), nil
}

// ExplainSQL plans and runs a SELECT, returning the annotated physical
// plan (operator tree with per-node rows and self time).
func (k *KB) ExplainSQL(query string) (string, error) {
	db, err := k.sqlDB()
	if err != nil {
		return "", err
	}
	return db.Explain(query)
}

// String renders a result as an aligned table.
func (r *QueryResult) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b []byte
	appendRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b = append(b, ' ', '|', ' ')
			}
			b = append(b, fmt.Sprintf("%-*s", widths[i], v)...)
		}
		b = append(b, '\n')
	}
	appendRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	appendRow(sep)
	for _, row := range r.Rows {
		appendRow(row)
	}
	return string(b)
}
