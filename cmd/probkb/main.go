// Command probkb runs knowledge expansion over a KB directory.
//
// Subcommands:
//
//	probkb stats   -kb DIR
//	    Print the KB's Table 2-style statistics.
//
//	probkb expand  -kb DIR [-out DIR] [-engine probkb|probkb-p|probkb-pn|tuffy]
//	               [-segments N] [-iters N] [-no-constraints] [-theta F]
//	               [-no-inference] [-burnin N] [-samples N] [-seed N] [-v] [-trace]
//	               [-journal FILE] [-persist DIR]
//	               [-chaos-seed N] [-chaos-fail P] [-chaos-panic P]
//	               [-chaos-straggle P] [-chaos-delay D]
//	               [-retries N] [-retry-backoff D]
//	    Expand the KB: quality control, batched grounding, Gibbs
//	    marginals. Writes the expanded KB to -out if given; prints a
//	    summary and the top inferred facts. -journal streams the run
//	    journal (JSONL events) to FILE for probkb report. SIGINT/SIGTERM
//	    cancel the run cooperatively: partial results are summarized, the
//	    journal is flushed, and the exit code is 1. The -chaos-* flags
//	    deterministically inject segment-task failures, panics, and
//	    stragglers into MPP runs; -retries re-executes failed segment
//	    tasks (results are unchanged — see probkb report's fault section).
//	    -persist makes the run durable: a columnar snapshot plus a WAL of
//	    every completed grounding iteration land in DIR as the run goes.
//	    An empty DIR is initialized from -kb; a DIR that already holds a
//	    store is recovered (snapshot + WAL replay) and expansion resumes
//	    from the recovered facts — kill the process at any point and
//	    re-run the same command.
//
//	probkb ingest  -kb DIR [-persist DIR] [-in FILE] [-format jsonl|csv]
//	               [-batch N] [-delay D] [-queue N]
//	               [-refresh-every K] [-refresh-interval D]
//	               [-burnin N] [-samples N] [-seed N] [-journal FILE] [-v]
//	    Stream facts into a live KB. The input (a file, or stdin with
//	    -in -) is a firehose of facts — JSONL objects with rel/x/xClass/
//	    y/yClass/probability fields, or CSV rows in that column order —
//	    absorbed in batches of up to -batch facts (a partial batch closes
//	    after -delay). Each batch lands with semi-naive delta grounding:
//	    its facts and everything derivable from them are visible (and,
//	    with -persist, WAL-durable) as soon as the batch is absorbed,
//	    while Gibbs marginals refresh lazily every -refresh-every batches
//	    or -refresh-interval of wall clock, whichever fires first. SIGINT
//	    stops the reader, drains the queue, runs a final refresh, and
//	    summarizes; a second SIGINT aborts the in-flight batch. With
//	    -persist, a DIR that already holds a store is recovered and
//	    ingestion resumes on top of it — re-streaming the same input is
//	    harmless (duplicate facts are dropped by the closure). -journal
//	    streams one ingest_batch/ingest_refresh JSONL event per batch.
//
//	probkb save    -kb DIR -store DIR
//	    Initialize a durable store from a KB: generation-1 snapshot plus
//	    an empty WAL.
//
//	probkb load    -store DIR [-out DIR] [-checkpoint]
//	    Recover the store (snapshot load, WAL replay, torn-tail
//	    truncation) and print what was recovered. -out writes the
//	    recovered KB as a text directory; -checkpoint folds the WAL into
//	    a fresh snapshot before exiting.
//
//	probkb report  [-top N] [-skew N] [-json] JOURNAL
//	    Analyze a run journal written by expand -journal: per-phase time
//	    breakdown, grounding iterations, top-k slowest operators, the
//	    per-segment skew/straggler table, motion volumes, and the Gibbs
//	    convergence timeline. -json emits the analyzed profile as JSON
//	    (the same payload as the server's /debug/profile).
//
//	probkb explain -kb DIR -fact "rel(x, y)" [-depth N]
//	    Expand, then print the derivation tree of one fact.
//
//	probkb query   -kb DIR -atom "rel(x, y)" [-depth N] [-radius N]
//	               [-markov N] [-burnin N] [-samples N] [-seed N]
//	    Answer one point query without expanding: ground only the atom's
//	    local proof graph and Gibbs-sample only its Markov neighborhood.
//	    -samples -1 skips inference and just reports derivability.
//
//	probkb rules   -kb DIR [-top N]
//	    Score the KB's rules by statistical significance.
//
//	probkb sql     -kb DIR -q "SELECT ..." [-explain] [-limit N]
//	    Run a SQL query against the KB's relational representation. The
//	    catalog holds T (facts), TC, TR, FC (constraints), and the MLN
//	    partition tables M1..M6 — the paper's grounding queries run
//	    verbatim.
//
//	probkb top     [-addr URL] [-interval D] [-once]
//	    Live terminal view of a running probkb-server: qps, p50/p99
//	    request latency, in-flight queries with phase and rows so far,
//	    Gibbs sampling throughput, and Go runtime health — polled from
//	    the server's /metrics and /debug/queries endpoints. Rates and
//	    quantiles are computed over the poll interval; values marked *
//	    are lifetime cumulative (shown until two polls have landed).
//	    -once prints a single frame and exits.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"probkb"
	"probkb/internal/ingest"
	"probkb/internal/obs"
	"probkb/internal/obs/journal"
	"probkb/internal/top"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		cmdStats(os.Args[2:])
	case "expand":
		cmdExpand(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	case "save":
		cmdSave(os.Args[2:])
	case "load":
		cmdLoad(os.Args[2:])
	case "report":
		cmdReport(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "rules":
		cmdRules(os.Args[2:])
	case "sql":
		cmdSQL(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "incidents":
		cmdIncidents(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: probkb {stats|expand|ingest|save|load|report|explain|query|rules|sql|top|incidents} [flags]; see -h of each subcommand")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "probkb:", err)
	os.Exit(1)
}

func loadKB(dir string) *probkb.KB {
	if dir == "" {
		die(fmt.Errorf("missing -kb DIR"))
	}
	k, err := probkb.Load(dir)
	if err != nil {
		die(err)
	}
	return k
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	fs.Parse(args)
	k := loadKB(*dir)
	s := k.Stats()
	fmt.Printf("# relations  %8d    # entities %8d\n", s.Relations, s.Entities)
	fmt.Printf("# rules      %8d    # facts    %8d\n", s.Rules, s.Facts)
	fmt.Printf("# classes    %8d    # constraints %5d\n", s.Classes, s.Constraints)
}

func engineByName(name string) (probkb.Engine, error) {
	switch strings.ToLower(name) {
	case "probkb", "single", "":
		return probkb.SingleNode, nil
	case "probkb-p", "mpp":
		return probkb.MPP, nil
	case "probkb-pn", "mpp-noviews":
		return probkb.MPPNoViews, nil
	case "tuffy", "tuffy-t", "baseline":
		return probkb.Baseline, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func cmdExpand(args []string) {
	fs := flag.NewFlagSet("expand", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	out := fs.String("out", "", "write the expanded KB to this directory")
	engineName := fs.String("engine", "probkb", "probkb | probkb-p | probkb-pn | tuffy")
	segments := fs.Int("segments", 4, "MPP segments")
	engineWorkers := fs.Int("engine-workers", 0, "engine worker-pool size (0 = NumCPU single-node / serial segments on MPP; 1 = serial)")
	iters := fs.Int("iters", 0, "max grounding iterations (0 = to convergence)")
	noConstraints := fs.Bool("no-constraints", false, "disable semantic constraints")
	theta := fs.Float64("theta", 1, "rule cleaning: keep top θ of rules (1 = off)")
	noInference := fs.Bool("no-inference", false, "skip Gibbs marginal inference")
	burnin := fs.Int("burnin", 100, "Gibbs burn-in sweeps")
	samples := fs.Int("samples", 500, "Gibbs sample sweeps")
	seed := fs.Int64("seed", 0, "inference seed")
	verbose := fs.Bool("v", false, "print per-iteration progress and top inferred facts")
	trace := fs.Bool("trace", false, "print the expansion's span tree (per-stage timings)")
	factorsDir := fs.String("factors", "", "export the ground factor graph (variables.tsv, factors.tsv) to this directory")
	journalPath := fs.String("journal", "", "stream the run journal (JSONL events) to this file; analyze with probkb report")
	persistDir := fs.String("persist", "", "durable store directory: created from -kb if empty, recovered and resumed if it already holds a store")
	chaosSeed := fs.Int64("chaos-seed", 0, "fault-injection seed (MPP engines)")
	chaosFail := fs.Float64("chaos-fail", 0, "per-segment-task probability of an injected failure")
	chaosPanic := fs.Float64("chaos-panic", 0, "per-segment-task probability of an injected worker panic")
	chaosStraggle := fs.Float64("chaos-straggle", 0, "per-segment-task probability of an injected straggler")
	chaosDelay := fs.Duration("chaos-delay", 10*time.Millisecond, "injected straggler sleep")
	retries := fs.Int("retries", 0, "re-execute a failed MPP segment task up to N times")
	retryBackoff := fs.Duration("retry-backoff", time.Millisecond, "base delay before segment retry k (scaled linearly)")
	fs.Parse(args)

	var (
		k   *probkb.KB
		pst *probkb.Store
	)
	if *persistDir != "" {
		ok, err := probkb.StoreExists(*persistDir)
		if err != nil {
			die(err)
		}
		if ok {
			// A store already lives here: recover it and resume from the
			// recovered facts; -kb is not consulted.
			if pst, err = probkb.OpenStore(*persistDir); err != nil {
				die(err)
			}
			k = pst.KB()
			fmt.Printf("resumed store %s: gen %d, %d WAL records replayed, %d facts\n",
				*persistDir, pst.Gen(), pst.WALRecords(), pst.Facts())
		} else {
			k = loadKB(*dir)
			if pst, err = probkb.CreateStore(*persistDir, k); err != nil {
				die(err)
			}
			fmt.Printf("initialized store %s\n", *persistDir)
		}
		defer pst.Close()
	} else {
		k = loadKB(*dir)
	}
	eng, err := engineByName(*engineName)
	if err != nil {
		die(err)
	}
	cfg := probkb.Config{
		Engine:           eng,
		Segments:         *segments,
		EngineWorkers:    *engineWorkers,
		MaxIterations:    *iters,
		ApplyConstraints: !*noConstraints,
		RuleCleanTheta:   *theta,
		RunInference:     !*noInference,
		GibbsBurnin:      *burnin,
		GibbsSamples:     *samples,
		GibbsParallel:    true,
		Seed:             *seed,
		JournalPath:      *journalPath,
		SegmentRetries:   *retries,
		RetryBackoff:     *retryBackoff,
	}
	cfg.Persist = pst
	if *chaosFail > 0 || *chaosPanic > 0 || *chaosStraggle > 0 {
		cfg.Faults = &probkb.FaultConfig{
			Seed:          *chaosSeed,
			FailRate:      *chaosFail,
			PanicRate:     *chaosPanic,
			StraggleRate:  *chaosStraggle,
			StraggleDelay: *chaosDelay,
		}
	}

	// SIGINT/SIGTERM cancel the run context. The pipeline honors
	// cancellation cooperatively and returns a PartialError whose journal
	// has been flushed, so `probkb report` works on interrupted runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exp, err := k.ExpandContext(ctx, cfg)
	interrupted := false
	if err != nil {
		var pe *probkb.PartialError
		if !errors.As(err, &pe) {
			die(err)
		}
		interrupted = true
		exp = pe.Partial
		fmt.Fprintf(os.Stderr, "probkb: run interrupted during %s (%v); partial results follow\n",
			pe.Phase, pe.Err)
	}
	st := exp.Stats()
	fmt.Printf("engine         %s\n", eng)
	fmt.Printf("base facts     %d\n", st.BaseFacts)
	fmt.Printf("inferred facts %d\n", st.InferredFacts)
	fmt.Printf("factors        %d\n", st.Factors)
	fmt.Printf("iterations     %d (converged=%v)\n", st.Iterations, st.Converged)
	fmt.Printf("queries        %d grounding + %d factor\n", st.AtomQueries, st.FactorQueries)
	fmt.Printf("time           load %s, grounding %s, factors %s, inference %s\n",
		st.LoadTime, st.GroundingTime, st.FactorTime, st.InferenceTime)

	if *trace {
		if tr := obs.LastTrace(); tr != nil {
			fmt.Println("trace:")
			fmt.Print(tr.Render())
		}
	}

	if *verbose {
		for _, it := range exp.PerIteration() {
			fmt.Printf("  iter %d: +%d facts, -%d deleted, %d queries, %s\n",
				it.Iteration, it.NewFacts, it.Deleted, it.Queries, it.Elapsed)
		}
		inferred := exp.InferredFacts()
		sort.Slice(inferred, func(a, b int) bool {
			return inferred[a].Probability > inferred[b].Probability
		})
		n := 20
		if len(inferred) < n {
			n = len(inferred)
		}
		fmt.Printf("top %d inferred facts:\n", n)
		for _, f := range inferred[:n] {
			fmt.Println(" ", f)
		}
	}

	if interrupted {
		// A partial run is not a publishable expansion: skip -out and
		// -factors, exit nonzero. The journal (if any) is already flushed.
		if *factorsDir != "" || *out != "" {
			fmt.Fprintln(os.Stderr, "probkb: run was interrupted; skipping -out/-factors output")
		}
		if pst != nil {
			pst.Close()
			fmt.Fprintf(os.Stderr, "probkb: durable state through the last completed iteration is in %s; re-run with -persist to resume\n", pst.Dir())
		}
		os.Exit(1)
	}
	if pst != nil {
		fmt.Printf("store %s: gen %d, %d WAL records, %d facts durable\n",
			pst.Dir(), pst.Gen(), pst.WALRecords(), pst.Facts())
	}
	if *factorsDir != "" {
		if err := exp.SaveFactorGraph(*factorsDir); err != nil {
			die(err)
		}
		fmt.Printf("factor graph written to %s\n", *factorsDir)
	}
	if *out != "" {
		if err := exp.ToKB().Save(*out); err != nil {
			die(err)
		}
		fmt.Printf("expanded KB written to %s\n", *out)
	}
}

// cmdIngest streams a firehose of facts into a live KB through the
// ingest pipeline: batches land with semi-naive delta grounding (facts
// and closure visible immediately, WAL-durable with -persist) while
// Gibbs marginals refresh lazily on the configured staleness policy.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory (rules + seed facts); not consulted when -persist already holds a store")
	persistDir := fs.String("persist", "", "durable store directory: created from -kb if empty, recovered and resumed if it already holds a store")
	inPath := fs.String("in", "-", "fact stream: a file, or - for stdin")
	format := fs.String("format", "", "jsonl | csv (default: csv for .csv files, jsonl otherwise)")
	batch := fs.Int("batch", 256, "batch-size trigger (facts)")
	delay := fs.Duration("delay", 50*time.Millisecond, "batch-latency trigger: a partial batch closes this long after its first fact")
	queue := fs.Int("queue", 4096, "firehose queue depth (facts); the reader blocks when it is full")
	refreshEvery := fs.Int("refresh-every", 8, "refresh Gibbs marginals every K absorbed batches (0 = only on close)")
	refreshInterval := fs.Duration("refresh-interval", 0, "also refresh after this much wall clock since the last refresh (0 = off)")
	burnin := fs.Int("burnin", 100, "Gibbs burn-in sweeps per refresh")
	samples := fs.Int("samples", 500, "Gibbs sample sweeps per refresh")
	seed := fs.Int64("seed", 0, "inference seed")
	journalPath := fs.String("journal", "", "stream ingest_batch/ingest_refresh events (JSONL) to this file")
	verbose := fs.Bool("v", false, "print one line per absorbed batch")
	fs.Parse(args)

	var (
		k   *probkb.KB
		pst *probkb.Store
	)
	if *persistDir != "" {
		ok, err := probkb.StoreExists(*persistDir)
		if err != nil {
			die(err)
		}
		if ok {
			if pst, err = probkb.OpenStore(*persistDir); err != nil {
				die(err)
			}
			k = pst.KB()
			fmt.Printf("resumed store %s: gen %d, %d WAL records replayed, %d facts\n",
				*persistDir, pst.Gen(), pst.WALRecords(), pst.Facts())
		} else {
			k = loadKB(*dir)
			if pst, err = probkb.CreateStore(*persistDir, k); err != nil {
				die(err)
			}
			fmt.Printf("initialized store %s\n", *persistDir)
		}
		defer pst.Close()
	} else {
		k = loadKB(*dir)
	}

	// Seed the serving state: one full expansion of the starting KB,
	// marginals included, so the stream lands on a converged baseline.
	exp, err := k.Expand(probkb.Config{
		Engine: probkb.SingleNode, RunInference: true,
		GibbsBurnin: *burnin, GibbsSamples: *samples, GibbsParallel: true,
		Seed: *seed, Persist: pst,
	})
	if err != nil {
		die(err)
	}
	base := exp.Stats()
	fmt.Printf("baseline       %d base + %d inferred facts\n", base.BaseFacts, base.InferredFacts)

	var src io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			die(err)
		}
		defer f.Close()
		src = f
	}
	if *format == "" {
		if strings.HasSuffix(*inPath, ".csv") {
			*format = "csv"
		} else {
			*format = "jsonl"
		}
	}

	// First SIGINT: stop the reader, drain the queue, run the closing
	// refresh. Second SIGINT: abort the in-flight batch (nothing torn —
	// with -persist, re-running the same command resumes).
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	readCtx, stopRead := context.WithCancel(context.Background())
	defer stopRead()
	pipeCtx, stopPipe := context.WithCancel(context.Background())
	defer stopPipe()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "probkb: interrupt — draining and refreshing (interrupt again to abort)")
		stopRead()
		<-sigCh
		fmt.Fprintln(os.Stderr, "probkb: aborting in-flight batch")
		stopPipe()
	}()

	ing := probkb.NewIngester(exp)
	var jr *journal.Writer
	if *journalPath != "" {
		jr = journal.New()
		if err := jr.SinkTo(*journalPath); err != nil {
			die(err)
		}
		defer jr.Close()
	}
	cfg := ingest.Config{
		MaxBatch: *batch, MaxDelay: *delay, QueueDepth: *queue,
		RefreshEvery: *refreshEvery, RefreshInterval: *refreshInterval,
		RefreshOnClose: true, Journal: jr,
	}
	if *verbose {
		cfg.OnBatch = func(a ingest.Ack) {
			extra := ""
			if a.Refreshed {
				extra = " [refreshed]"
			}
			fmt.Printf("  batch %d: %d facts (+%d new, %d derived) gen %d seq %d stale %d%s\n",
				a.Batch, a.Facts, a.Added, a.Derived, a.Generation, a.DurableSeq, a.StaleBatches, extra)
		}
	}
	start := time.Now()
	p := ing.Pipeline(pipeCtx, cfg)

	read, readErr := streamFacts(src, *format, func(f ingest.Fact) error {
		return p.Submit(readCtx, f)
	})
	interrupted := errors.Is(readErr, context.Canceled)
	if readErr != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "probkb: input stopped after %d facts: %v\n", read, readErr)
	}
	closeErr := p.Close(pipeCtx)
	elapsed := time.Since(start)

	st := p.Stats()
	rate := float64(st.Facts) / elapsed.Seconds()
	fmt.Printf("ingested       %d facts in %d batches, %s (%.0f facts/sec)\n",
		st.Facts, st.Batches, elapsed.Round(time.Millisecond), rate)
	fmt.Printf("refreshes      %d (staleness at exit: %d batches)\n", st.Refreshes, st.StaleBatches)
	pin := ing.Current()
	final := pin.Value().Stats()
	fmt.Printf("closure        %d base + %d inferred facts, generation %d\n",
		final.BaseFacts, final.InferredFacts, ing.Generation())
	pin.Unpin()
	if pst != nil {
		fmt.Printf("store          %s: gen %d, %d WAL records, %d facts durable\n",
			pst.Dir(), pst.Gen(), pst.WALRecords(), pst.Facts())
	}
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "probkb: pipeline stopped early: %v\n", closeErr)
		if pst != nil {
			fmt.Fprintf(os.Stderr, "probkb: durable state through the last absorbed batch is in %s; re-run with -persist to resume\n", pst.Dir())
		}
		os.Exit(1)
	}
	if (readErr != nil && !interrupted) || interrupted {
		os.Exit(1)
	}
}

// streamFacts decodes the fact firehose and hands each fact to submit,
// stopping at EOF or the first submit error (a cancelled reader context
// surfaces here as context.Canceled).
func streamFacts(r io.Reader, format string, submit func(ingest.Fact) error) (int, error) {
	n := 0
	switch format {
	case "jsonl":
		dec := json.NewDecoder(r)
		for {
			var f struct {
				Rel         string  `json:"rel"`
				X           string  `json:"x"`
				XClass      string  `json:"xClass"`
				Y           string  `json:"y"`
				YClass      string  `json:"yClass"`
				Probability float64 `json:"probability"`
			}
			if err := dec.Decode(&f); err == io.EOF {
				return n, nil
			} else if err != nil {
				return n, fmt.Errorf("fact %d: %w", n+1, err)
			}
			n++
			if err := submit(ingest.Fact{
				Rel: f.Rel, X: f.X, XClass: f.XClass, Y: f.Y, YClass: f.YClass,
				Probability: f.Probability,
			}); err != nil {
				return n, err
			}
		}
	case "csv":
		cr := csv.NewReader(r)
		cr.FieldsPerRecord = 6
		cr.TrimLeadingSpace = true
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				return n, nil
			} else if err != nil {
				return n, err
			}
			if n == 0 && rec[0] == "rel" {
				continue // header row
			}
			prob, err := strconv.ParseFloat(rec[5], 64)
			if err != nil {
				return n, fmt.Errorf("fact %d: bad probability %q", n+1, rec[5])
			}
			n++
			if err := submit(ingest.Fact{
				Rel: rec[0], X: rec[1], XClass: rec[2], Y: rec[3], YClass: rec[4],
				Probability: prob,
			}); err != nil {
				return n, err
			}
		}
	default:
		return 0, fmt.Errorf("unknown format %q (want jsonl or csv)", format)
	}
}

func cmdSave(args []string) {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	storeDir := fs.String("store", "", "store directory to initialize")
	fs.Parse(args)
	if *storeDir == "" {
		die(fmt.Errorf("missing -store DIR"))
	}
	k := loadKB(*dir)
	st, err := probkb.CreateStore(*storeDir, k)
	if err != nil {
		die(err)
	}
	if err := st.Close(); err != nil {
		die(err)
	}
	fmt.Printf("store %s: gen %d snapshot, %d bytes, %d facts\n",
		*storeDir, st.Gen(), st.SnapshotBytes(), st.Facts())
}

func cmdLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory to recover")
	out := fs.String("out", "", "write the recovered KB as a text directory")
	checkpoint := fs.Bool("checkpoint", false, "fold the WAL into a fresh snapshot after recovery")
	fs.Parse(args)
	if *storeDir == "" {
		die(fmt.Errorf("missing -store DIR"))
	}
	st, err := probkb.OpenStore(*storeDir)
	if err != nil {
		die(err)
	}
	defer st.Close()
	fmt.Printf("recovered store %s: gen %d, %d WAL records replayed\n",
		*storeDir, st.Gen(), st.WALRecords())
	k := st.KB()
	s := k.Stats()
	fmt.Printf("# relations  %8d    # entities %8d\n", s.Relations, s.Entities)
	fmt.Printf("# rules      %8d    # facts    %8d\n", s.Rules, s.Facts)
	fmt.Printf("# classes    %8d    # constraints %5d\n", s.Classes, s.Constraints)
	if *checkpoint {
		if err := st.Checkpoint(); err != nil {
			die(err)
		}
		fmt.Printf("checkpointed: gen %d snapshot, %d bytes\n", st.Gen(), st.SnapshotBytes())
	}
	if *out != "" {
		if err := k.Save(*out); err != nil {
			die(err)
		}
		fmt.Printf("recovered KB written to %s\n", *out)
	}
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	top := fs.Int("top", 10, "operators to show in the top-operators table")
	skew := fs.Int("skew", 10, "rows to show in the per-segment skew table")
	asJSON := fs.Bool("json", false, "emit the analyzed profile as JSON instead of text")
	fs.Parse(args)
	path := fs.Arg(0)
	if path == "" {
		die(fmt.Errorf("missing journal file: probkb report [-top N] [-skew N] [-json] JOURNAL"))
	}
	run, err := journal.ReadFile(path)
	if err != nil {
		die(err)
	}
	prof := journal.Analyze(run)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(prof); err != nil {
			die(err)
		}
		return
	}
	fmt.Print(journal.Render(prof, journal.ReportOptions{TopOperators: *top, TopSkew: *skew}))
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	factStr := fs.String("fact", "", `fact to explain, as "rel(x, y)"`)
	depth := fs.Int("depth", 4, "proof tree depth")
	fs.Parse(args)

	rel, x, y, err := parseFactRef(*factStr)
	if err != nil {
		die(err)
	}
	k := loadKB(*dir)
	exp, err := k.Expand(probkb.Config{Engine: probkb.SingleNode, ApplyConstraints: true})
	if err != nil {
		die(err)
	}
	text, err := exp.Explain(rel, x, y, *depth)
	if err != nil {
		die(err)
	}
	fmt.Print(text)
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	atom := fs.String("atom", "", `query atom "rel(x, y)"`)
	depth := fs.Int("depth", 0, "proof depth bound (0 = default)")
	radius := fs.Int("radius", 0, "evidence-ball radius (0 = depth+1)")
	markov := fs.Int("markov", 0, "Gibbs neighborhood radius (0 = whole component)")
	burnin := fs.Int("burnin", 0, "Gibbs burn-in sweeps (0 = default)")
	samples := fs.Int("samples", 0, "Gibbs sample sweeps (0 = default, -1 = skip inference)")
	seed := fs.Int64("seed", 0, "random seed for sampling")
	fs.Parse(args)
	if *atom == "" {
		die(fmt.Errorf("missing -atom \"rel(x, y)\""))
	}
	rel, x, y, err := probkb.ParseAtom(*atom)
	if err != nil {
		die(err)
	}
	k := loadKB(*dir)
	m, err := k.PointQuery(context.Background(), probkb.PointQuery{
		Rel: rel, X: x, Y: y,
		Depth: *depth, Radius: *radius, MarkovRadius: *markov,
		Burnin: *burnin, Samples: *samples,
	}, probkb.Config{Seed: *seed})
	if err != nil {
		die(err)
	}
	switch {
	case !m.Found:
		fmt.Printf("%s(%s, %s): not derivable (depth %d, radius %d)\n", rel, x, y, m.Depth, m.Radius)
	case m.Observed:
		fmt.Printf("%s(%s, %s) = %.4f (observed)\n", rel, x, y, m.Probability)
	default:
		fmt.Printf("%s(%s, %s) = %.4f (inferred)\n", rel, x, y, m.Probability)
	}
	fmt.Printf("local: %d seed facts, %d facts after %d iterations, %d rules in scope, %d vars / %d factors sampled, %d sweeps, %s\n",
		m.SeedFacts, m.LocalFacts, m.Iterations, m.RulesReachable, m.LocalVars, m.LocalFactors, m.Collected, m.Elapsed.Round(time.Millisecond))
}

func parseFactRef(s string) (rel, x, y string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", "", fmt.Errorf(`bad -fact %q: want "rel(x, y)"`, s)
	}
	rel = strings.TrimSpace(s[:open])
	args := strings.Split(s[open+1:len(s)-1], ",")
	if len(args) != 2 || rel == "" {
		return "", "", "", fmt.Errorf(`bad -fact %q: want "rel(x, y)"`, s)
	}
	return rel, strings.TrimSpace(args[0]), strings.TrimSpace(args[1]), nil
}

func cmdSQL(args []string) {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	query := fs.String("q", "", "SQL query (SELECT over T, TC, TR, FC, M1..M6, DE)")
	explain := fs.Bool("explain", false, "print the annotated physical plan instead of rows")
	limit := fs.Int("limit", 50, "maximum rows to print")
	fs.Parse(args)
	if *query == "" {
		die(fmt.Errorf("missing -q QUERY"))
	}
	k := loadKB(*dir)
	if *explain {
		plan, err := k.ExplainSQL(*query)
		if err != nil {
			die(err)
		}
		fmt.Print(plan)
		return
	}
	res, err := k.QuerySQL(*query)
	if err != nil {
		die(err)
	}
	total := len(res.Rows)
	if total > *limit {
		res.Rows = res.Rows[:*limit]
	}
	fmt.Print(res)
	if total > *limit {
		fmt.Printf("... (%d of %d rows shown)\n", *limit, total)
	} else {
		fmt.Printf("(%d rows)\n", total)
	}
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "probkb-server base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "print a single frame and exit")
	fs.Parse(args)

	client := &top.Client{Base: strings.TrimRight(*addr, "/")}
	var prev *top.Scrape
	for {
		cur, err := client.Metrics()
		if err != nil {
			die(err)
		}
		queries, err := client.Queries()
		if err != nil {
			die(err)
		}
		// Incidents are additive context: an older server without the
		// endpoint still renders (count 0).
		incidents, _ := client.Incidents()
		frame := top.Render(prev, cur, queries, incidents)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear to end of screen between frames so
		// the view repaints in place like top(1).
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev = cur
		time.Sleep(*interval)
	}
}

// cmdIncidents lists a live server's watchdog incidents, or renders one
// full report (-id): summary, offending query and plan, the flight-
// recorder timeline leading up to the anomaly, and (with -goroutines)
// the goroutine dump.
func cmdIncidents(args []string) {
	fs := flag.NewFlagSet("incidents", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "probkb-server base URL")
	id := fs.String("id", "", "show one full incident report instead of the listing")
	goroutines := fs.Bool("goroutines", false, "with -id: include the goroutine dump")
	asJSON := fs.Bool("json", false, "emit raw JSON")
	fs.Parse(args)

	client := &top.Client{Base: strings.TrimRight(*addr, "/")}
	if *id == "" {
		incidents, err := client.Incidents()
		if err != nil {
			die(err)
		}
		if *asJSON {
			json.NewEncoder(os.Stdout).Encode(incidents)
			return
		}
		if len(incidents) == 0 {
			fmt.Println("no incidents")
			return
		}
		now := time.Now()
		for _, inc := range incidents {
			age := now.Sub(inc.Time).Round(time.Second)
			fmt.Printf("%-5s %8s ago  %-16s %s\n", inc.ID, age, inc.Detector, inc.Summary)
		}
		fmt.Printf("(%d incidents; probkb incidents -id ID for the full report)\n", len(incidents))
		return
	}

	raw, err := client.Incident(*id)
	if err != nil {
		die(err)
	}
	if *asJSON {
		os.Stdout.Write(append(raw, '\n'))
		return
	}
	var inc obs.Incident
	if err := json.Unmarshal(raw, &inc); err != nil {
		die(err)
	}
	fmt.Printf("incident %s  %s  %s\n", inc.ID, inc.Detector, inc.Time.Format(time.RFC3339))
	fmt.Printf("  %s\n", inc.Summary)
	if inc.QueryID != "" {
		fmt.Printf("\noffending query %s (%s): %s\n", inc.QueryID, inc.QueryKind, inc.QueryText)
	}
	if inc.Plan != "" {
		fmt.Printf("\nplan:\n%s\n", inc.Plan)
	}
	if len(inc.Queries) > 0 {
		fmt.Printf("\nactive queries at capture:\n")
		for _, q := range inc.Queries {
			fmt.Printf("  %-5s %-9s %-8s %10s %10d  %s\n",
				q.ID, q.Kind, q.Phase, q.Elapsed.Round(time.Millisecond), q.Rows, q.Text)
		}
	}
	fmt.Printf("\nflight recorder (%d events):\n%s", len(inc.Flight), inc.Timeline)
	if *goroutines {
		fmt.Printf("\ngoroutines:\n%s", inc.Goroutines)
	} else {
		fmt.Printf("\n(goroutine dump captured; probkb incidents -id %s -goroutines to print)\n", inc.ID)
	}
}

func cmdRules(args []string) {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	dir := fs.String("kb", "", "KB directory")
	top := fs.Int("top", 20, "show the N best and worst rules")
	fs.Parse(args)

	k := loadKB(*dir)
	scores := k.RuleScores()
	sort.Slice(scores, func(a, b int) bool { return scores[a].Score > scores[b].Score })
	n := *top
	if n > len(scores) {
		n = len(scores)
	}
	fmt.Printf("top %d rules by statistical significance:\n", n)
	for _, sc := range scores[:n] {
		fmt.Printf("  %.3f (%d/%d) %s\n", sc.Score, sc.Hits, sc.Matches, sc.Rule)
	}
	if len(scores) > n {
		fmt.Printf("bottom %d:\n", n)
		for _, sc := range scores[len(scores)-n:] {
			fmt.Printf("  %.3f (%d/%d) %s\n", sc.Score, sc.Hits, sc.Matches, sc.Rule)
		}
	}
}
