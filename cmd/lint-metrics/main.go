// Command lint-metrics statically checks the repository's metric
// hygiene. It parses every non-test .go file and collects each
// .Counter("name", ...) / .Gauge(...) / .Histogram(...) / .Help(...)
// call whose name is a string literal (the only form the codebase
// uses), then enforces:
//
//   - every name is probkb_-prefixed snake_case,
//   - counters end in _total,
//   - histograms end in a unit suffix (_seconds, _bytes, or _ratio),
//   - every metric registered via Counter/Gauge/Histogram has a Help()
//     string somewhere in the tree,
//   - no name is used as two different metric kinds,
//   - every label key built with L("key", ...) / obs.L("key", ...) is
//     lower snake_case starting with a letter.
//
// Gauges are exempt from the unit-suffix rule: they legitimately carry
// either a unit (probkb_go_heap_bytes), a plain count
// (probkb_queries_in_flight), or a dimensionless value
// (probkb_infer_rhat_max), so a suffix rule would only force worse
// names. Everything else about them is still checked.
//
// Usage: lint-metrics [DIR] (default "."). Exit code 1 on violations,
// which are printed one per line as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRE  = regexp.MustCompile(`^probkb_[a-z0-9]+(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
)

type use struct {
	pos  token.Position
	kind string // "counter", "gauge", "histogram", "help"
	name string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	uses, err := collect(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint-metrics:", err)
		os.Exit(2)
	}
	problems := check(uses)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "lint-metrics: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("lint-metrics: ok (%d metric call sites)\n", len(uses))
}

func collect(root string) ([]use, error) {
	var uses []use
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			// L("key", value) / obs.L("key", value): a label
			// constructor. Validated separately — label keys have no
			// probkb_ prefix.
			if isLabelCtor(call.Fun) && len(call.Args) == 2 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if key, err := strconv.Unquote(lit.Value); err == nil {
						uses = append(uses, use{pos: fset.Position(lit.Pos()), kind: "label", name: key})
					}
				}
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind string
			switch sel.Sel.Name {
			case "Counter":
				kind = "counter"
			case "Gauge":
				kind = "gauge"
			case "Histogram":
				kind = "histogram"
			case "Help":
				kind = "help"
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(name, "probkb_") {
				// Selector names like Counter are generic; only probkb_
				// strings are certainly metrics (this also skips e.g. a
				// hypothetical foo.Help("usage text")).
				return true
			}
			uses = append(uses, use{pos: fset.Position(lit.Pos()), kind: kind, name: name})
			return true
		})
		return nil
	})
	return uses, err
}

// isLabelCtor recognizes the repository's two spellings of the label
// constructor: a bare L(...) inside package obs, obs.L(...) elsewhere.
func isLabelCtor(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name == "L"
	case *ast.SelectorExpr:
		pkg, ok := f.X.(*ast.Ident)
		return ok && pkg.Name == "obs" && f.Sel.Name == "L"
	}
	return false
}

func check(uses []use) []string {
	var problems []string
	addf := func(pos token.Position, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}

	helped := map[string]bool{}
	kinds := map[string]string{} // name -> first metric kind seen
	firstUse := map[string]use{} // name -> first Counter/Gauge/Histogram use
	for _, u := range uses {
		if u.kind == "label" {
			if !labelRE.MatchString(u.name) {
				addf(u.pos, "label %q: not lower snake_case starting with a letter", u.name)
			}
			continue
		}
		if u.kind == "help" {
			helped[u.name] = true
			continue
		}
		if prev, ok := kinds[u.name]; ok && prev != u.kind {
			addf(u.pos, "%s used as %s but already used as %s (%s)",
				u.name, u.kind, prev, firstUse[u.name].pos)
			continue
		}
		kinds[u.name] = u.kind
		if _, ok := firstUse[u.name]; !ok {
			firstUse[u.name] = u
		}
	}

	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		u := firstUse[name]
		if !nameRE.MatchString(name) {
			addf(u.pos, "%s: not probkb_-prefixed snake_case", name)
		}
		switch kinds[name] {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				addf(u.pos, "%s: counter must end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") &&
				!strings.HasSuffix(name, "_ratio") {
				addf(u.pos, "%s: histogram must end in a unit suffix (_seconds, _bytes, _ratio)", name)
			}
		}
		if !helped[name] {
			addf(u.pos, "%s: no Help() registered anywhere", name)
		}
	}
	sort.Strings(problems)
	return problems
}
