package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func collectSrc(t *testing.T, src string) []use {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	uses, err := collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	return uses
}

func TestLabelKeysValidated(t *testing.T) {
	src := `package p

func f() {
	obs.Default.Counter("probkb_good_total", obs.L("detector", "x")).Inc()
	obs.Default.Counter("probkb_good_total", obs.L("BadKey", "x")).Inc()
	Default.Counter("probkb_good_total", L("also-bad", "x")).Inc()
	obs.Default.Help("probkb_good_total", "h")
}
`
	problems := check(collectSrc(t, src))
	var badKey, alsoBad bool
	for _, p := range problems {
		badKey = badKey || strings.Contains(p, `label "BadKey"`)
		alsoBad = alsoBad || strings.Contains(p, `label "also-bad"`)
		if strings.Contains(p, `label "detector"`) {
			t.Errorf("valid label flagged: %s", p)
		}
	}
	if !badKey || !alsoBad {
		t.Fatalf("bad labels not flagged; problems: %v", problems)
	}
}

func TestMetricNameRules(t *testing.T) {
	src := `package p

func f() {
	obs.Default.Counter("probkb_missing_suffix").Inc()
	obs.Default.Gauge("probkb_ok_gauge").Set(1)
	obs.Default.Help("probkb_missing_suffix", "h")
	obs.Default.Help("probkb_ok_gauge", "h")
	obs.Default.Counter("probkb_no_help_total").Inc()
}
`
	problems := check(collectSrc(t, src))
	var suffix, help bool
	for _, p := range problems {
		suffix = suffix || strings.Contains(p, "counter must end in _total")
		help = help || strings.Contains(p, "probkb_no_help_total: no Help()")
	}
	if !suffix || !help {
		t.Fatalf("expected suffix and help problems, got: %v", problems)
	}
}
