// Command kbgen generates synthetic knowledge bases in the on-disk KB
// format.
//
//	kbgen -out DIR [-scale 0.02] [-seed 42] [-rules N] [-facts N] [-stats]
//
// The base corpus is the ReVerb-Sherlock-like dataset (see DESIGN.md);
// -rules grows the rule set the way the paper's S1 family does, -facts
// grows the fact set the way S2 does.
package main

import (
	"flag"
	"fmt"
	"os"

	"probkb/internal/kb"
	"probkb/internal/synth"
)

func main() {
	out := flag.String("out", "", "output KB directory (required unless -stats only)")
	scale := flag.Float64("scale", 0.02, "corpus scale relative to the paper (1.0 = 407K facts)")
	seed := flag.Int64("seed", 42, "generation seed")
	rules := flag.Int("rules", 0, "grow/shrink the rule set to N (S1 family; 0 = leave as generated)")
	facts := flag.Int("facts", 0, "grow the fact set to N (S2 family; 0 = leave as generated)")
	stats := flag.Bool("stats", false, "print the generated KB's statistics")
	flag.Parse()

	corpus, err := synth.ReVerbSherlock(*scale, *seed)
	if err != nil {
		die(err)
	}
	k := corpus.KB
	if *rules > 0 {
		if k, err = synth.S1(corpus, *rules, *seed+1); err != nil {
			die(err)
		}
	}
	if *facts > 0 {
		// S2 grows facts on the corpus; reattach any S1-grown rules.
		grown, err := synth.S2(corpus, *facts, *seed+2)
		if err != nil {
			die(err)
		}
		if *rules > 0 {
			grown.Rules = append(grown.Rules[:0], k.Rules...)
		}
		k = grown
	}

	if *stats {
		fmt.Print(k.Stats().String())
		fmt.Printf("(hidden true world: %d facts)\n", corpus.TrueWorldSize)
	}
	if *out == "" {
		if !*stats {
			die(fmt.Errorf("missing -out DIR"))
		}
		return
	}
	if err := k.SaveDir(*out); err != nil {
		die(err)
	}
	fmt.Printf("KB written to %s (%d facts, %d rules, %d constraints)\n",
		*out, len(k.Facts), len(k.Rules), len(k.Constraints))
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "kbgen:", err)
	os.Exit(1)
}

var _ = kb.New // kb types flow through synth's public surface
