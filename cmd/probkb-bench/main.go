// Command probkb-bench regenerates the paper's evaluation tables and
// figures (Section 6) on synthetic corpora.
//
// Usage:
//
//	probkb-bench -exp table2|table3|table4|fig4|fig6a|fig6b|fig6c|fig7a|fig7b|growth|all
//	             [-scale 0.02] [-seed 42] [-segments 4]
//
// Absolute times depend on the machine and scale; EXPERIMENTS.md records
// a reference run and compares shapes against the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"probkb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table2, table3, table4, fig4, fig6a, fig6b, fig6c, fig7a, fig7b, growth, all)")
	scale := flag.Float64("scale", 0.02, "corpus scale relative to the paper (1.0 = 407K facts)")
	seed := flag.Int64("seed", 42, "generation seed")
	segments := flag.Int("segments", 4, "MPP cluster segments")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, Segments: *segments}
	w := os.Stdout

	type experiment struct {
		id  string
		run func() error
	}
	experiments := []experiment{
		{"table2", func() error { return bench.Table2(cfg, w) }},
		{"table3", func() error { _, err := bench.Table3(cfg, w); return err }},
		{"table4", func() error { return bench.Table4(cfg, w) }},
		{"fig4", func() error { return bench.Fig4(cfg, w) }},
		{"fig6a", func() error { _, err := bench.Fig6a(cfg, w); return err }},
		{"fig6b", func() error { _, err := bench.Fig6b(cfg, w); return err }},
		{"fig6c", func() error { _, err := bench.Fig6c(cfg, w); return err }},
		{"fig7a", func() error { _, err := bench.Fig7a(cfg, w); return err }},
		{"fig7b", func() error { _, err := bench.Fig7b(cfg, w); return err }},
		{"growth", func() error { _, err := bench.Growth(cfg, w); return err }},
		{"feedback", func() error { return bench.Feedback(cfg, w) }},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		if *exp == "all" {
			fmt.Fprintf(w, "==================== %s ====================\n", e.id)
		}
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "probkb-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
