// Command probkb-bench regenerates the paper's evaluation tables and
// figures (Section 6) on synthetic corpora.
//
// Usage:
//
//	probkb-bench -exp table2|table3|table4|fig4|fig6a|fig6b|fig6c|fig7a|fig7b|growth|ingest|serve|serve-mixed|point-query|all
//	             [-scale 0.02] [-seed 42] [-segments 4] [-json PATH]
//	             [-clients 8] [-serve-duration 2s] [-point-query] [-mixed]
//	             [-compare BENCH_old.json]
//
// A bare first argument is shorthand for -exp, so `probkb-bench serve`
// runs the serving-load harness: N concurrent clients issue point SQL
// queries and marginal fact lookups against an in-process
// probkb-server, reporting p50/p95/p99 latency and qps.
// `probkb-bench serve -point-query` drives GET /query instead — cold
// (cache-bypassing local grounding + neighborhood Gibbs) vs cached
// lookups — and records the full-closure wall time of the same corpus
// as the reference those latencies replace.
// `probkb-bench serve -mixed` measures the MVCC serving tier: the same
// read workload first against an idle server, then while a writer
// streams POST /facts extends that publish a new generation each round
// — the idle and under-write percentiles land in BENCH_<date>.json as
// one serve-mixed experiment, so bench-diff gates regressions in the
// read-while-expand path.
//
// Besides the human-readable tables on stdout, the run's structured
// results and per-experiment wall times are written to BENCH_<date>.json
// (override the path with -json, disable with -json "") so the perf
// trajectory across commits stays machine-readable.
//
// -compare diffs this run's per-experiment wall times against an older
// BENCH_<date>.json and exits nonzero when any experiment regressed by
// more than 20% (and more than 5ms absolute, so noise-level experiments
// can't trip the gate). `make bench-diff` wraps this mode.
//
// Absolute times depend on the machine and scale; EXPERIMENTS.md records
// a reference run and compares shapes against the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"probkb/internal/bench"
)

func main() {
	// `probkb-bench serve` reads as -exp serve: a bare first argument
	// names the experiment.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		os.Args = append([]string{os.Args[0], "-exp", os.Args[1]}, os.Args[2:]...)
	}
	exp := flag.String("exp", "all", "experiment id (table2, table3, table4, fig4, fig6a, fig6b, fig6c, fig7a, fig7b, growth, workers, ingest, serve, serve-mixed, point-query, all)")
	scale := flag.Float64("scale", 0.02, "corpus scale relative to the paper (1.0 = 407K facts)")
	seed := flag.Int64("seed", 42, "generation seed")
	segments := flag.Int("segments", 4, "MPP cluster segments")
	clients := flag.Int("clients", 8, "concurrent clients for the serve experiment")
	serveDur := flag.Duration("serve-duration", 2*time.Second, "measurement window for the serve experiment")
	now := time.Now()
	jsonPath := flag.String("json", fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02")),
		`also write results as JSON to this path ("" disables)`)
	comparePath := flag.String("compare", "",
		"diff this run against an older BENCH_<date>.json; exit nonzero on >20% regression")
	pointQuery := flag.Bool("point-query", false,
		"with -exp serve: drive GET /query (cold vs cached local grounding) instead of the read endpoints")
	mixed := flag.Bool("mixed", false,
		"with -exp serve: mixed read-while-expand workload — idle vs under-write read percentiles")
	flag.Parse()
	if *pointQuery && *exp == "serve" {
		*exp = "point-query"
	}
	if *mixed && *exp == "serve" {
		*exp = "serve-mixed"
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Segments: *segments}
	w := os.Stdout

	type experiment struct {
		id  string
		run func() (any, error)
	}
	experiments := []experiment{
		{"table2", func() (any, error) { return nil, bench.Table2(cfg, w) }},
		{"table3", func() (any, error) { return bench.Table3(cfg, w) }},
		{"table4", func() (any, error) { return nil, bench.Table4(cfg, w) }},
		{"fig4", func() (any, error) { return nil, bench.Fig4(cfg, w) }},
		{"fig6a", func() (any, error) { return bench.Fig6a(cfg, w) }},
		{"fig6b", func() (any, error) { return bench.Fig6b(cfg, w) }},
		{"fig6c", func() (any, error) { return bench.Fig6c(cfg, w) }},
		{"fig7a", func() (any, error) { return bench.Fig7a(cfg, w) }},
		{"fig7b", func() (any, error) { return bench.Fig7b(cfg, w) }},
		{"growth", func() (any, error) { return bench.Growth(cfg, w) }},
		{"feedback", func() (any, error) { return nil, bench.Feedback(cfg, w) }},
		{"workers", func() (any, error) { return bench.Workers(cfg, w) }},
		{"ingest", func() (any, error) { return bench.Ingest(cfg, w) }},
		{"serve", func() (any, error) { return bench.ServeN(cfg, *clients, *serveDur, w) }},
		{"serve-mixed", func() (any, error) { return bench.ServeMixed(cfg, *clients, *serveDur, w) }},
		{"point-query", func() (any, error) { return bench.PointQuery(cfg, *clients, *serveDur, w) }},
	}

	rep := bench.Report{
		Date: now.Format(time.RFC3339), Scale: *scale, Seed: *seed, Segments: *segments,
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		if *exp == "all" {
			fmt.Fprintf(w, "==================== %s ====================\n", e.id)
		}
		start := time.Now()
		result, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		rep.Experiments = append(rep.Experiments, bench.ExperimentResult{
			ID: e.id, Seconds: time.Since(start).Seconds(), Result: result,
		})
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "probkb-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonPath != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: encoding report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(body, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "results written to %s\n", *jsonPath)
	}

	if *comparePath != "" {
		base, err := bench.LoadReport(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: %v\n", err)
			os.Exit(1)
		}
		cmp, err := bench.CompareReports(base, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "probkb-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "comparison vs %s:\n", *comparePath)
		if n := bench.WriteComparison(w, cmp); n > 0 {
			fmt.Fprintf(os.Stderr, "probkb-bench: %d experiment(s) regressed >%.0f%% vs %s\n",
				n, (bench.RegressionRatio-1)*100, *comparePath)
			os.Exit(1)
		}
		fmt.Fprintln(w, "no regressions")
	}
}
