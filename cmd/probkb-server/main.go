// Command probkb-server expands a KB once at startup and serves the
// materialized result over HTTP (see internal/server for the endpoint
// list) — the paper's rationale for marginal (rather than query-time)
// inference: "avoiding query-time computation and improving system
// responsivity".
//
//	probkb-server -kb DIR [-addr :8080] [-engine probkb] [-iters N]
//	              [-no-constraints] [-theta F] [-no-inference]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"probkb"
	"probkb/internal/server"
)

func main() {
	dir := flag.String("kb", "", "KB directory (required)")
	addr := flag.String("addr", ":8080", "listen address")
	iters := flag.Int("iters", 0, "max grounding iterations (0 = to convergence)")
	noConstraints := flag.Bool("no-constraints", false, "disable semantic constraints")
	theta := flag.Float64("theta", 1, "rule cleaning: keep top θ of rules (1 = off)")
	noInference := flag.Bool("no-inference", false, "skip Gibbs marginal inference")
	seed := flag.Int64("seed", 0, "inference seed")
	flag.Parse()

	if *dir == "" {
		log.Fatal("probkb-server: missing -kb DIR")
	}
	k, err := probkb.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded KB: %+v", k.Stats())

	exp, err := k.Expand(probkb.Config{
		Engine:           probkb.SingleNode,
		MaxIterations:    *iters,
		ApplyConstraints: !*noConstraints,
		RuleCleanTheta:   *theta,
		RunInference:     !*noInference,
		GibbsParallel:    true,
		Seed:             *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := exp.Stats()
	log.Printf("expanded: %d base + %d inferred facts, %d factors (grounding %s, inference %s)",
		st.BaseFacts, st.InferredFacts, st.Factors, st.GroundingTime, st.InferenceTime)

	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(k, exp)); err != nil {
		log.Fatal(fmt.Errorf("probkb-server: %w", err))
	}
}
