// Command probkb-server expands a KB once at startup and serves the
// materialized result over HTTP (see internal/server for the endpoint
// list) — the paper's rationale for marginal (rather than query-time)
// inference: "avoiding query-time computation and improving system
// responsivity".
//
//	probkb-server -kb DIR [-addr :8080] [-engine probkb] [-iters N]
//	              [-no-constraints] [-theta F] [-no-inference]
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"

	"probkb"
	"probkb/internal/obs"
	"probkb/internal/server"
)

func main() {
	dir := flag.String("kb", "", "KB directory (required)")
	addr := flag.String("addr", ":8080", "listen address")
	iters := flag.Int("iters", 0, "max grounding iterations (0 = to convergence)")
	noConstraints := flag.Bool("no-constraints", false, "disable semantic constraints")
	theta := flag.Float64("theta", 1, "rule cleaning: keep top θ of rules (1 = off)")
	noInference := flag.Bool("no-inference", false, "skip Gibbs marginal inference")
	seed := flag.Int64("seed", 0, "inference seed")
	verbose := flag.Bool("v", false, "debug-level logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	if *dir == "" {
		logger.Error("missing -kb DIR")
		os.Exit(1)
	}
	k, err := probkb.Load(*dir)
	if err != nil {
		logger.Error("load failed", "err", err)
		os.Exit(1)
	}
	st := k.Stats()
	logger.Info("loaded KB", "facts", st.Facts, "rules", st.Rules,
		"entities", st.Entities, "constraints", st.Constraints)

	exp, err := k.Expand(probkb.Config{
		Engine:           probkb.SingleNode,
		MaxIterations:    *iters,
		ApplyConstraints: !*noConstraints,
		RuleCleanTheta:   *theta,
		RunInference:     !*noInference,
		GibbsParallel:    true,
		Seed:             *seed,
		OnIteration: func(it probkb.IterationStats) {
			logger.Debug("grounding iteration", "iter", it.Iteration,
				"new_facts", it.NewFacts, "deleted", it.Deleted, "queries", it.Queries)
		},
	})
	if err != nil {
		logger.Error("expansion failed", "err", err)
		os.Exit(1)
	}
	est := exp.Stats()
	logger.Info("expanded",
		"base_facts", est.BaseFacts, "inferred_facts", est.InferredFacts,
		"factors", est.Factors, "grounding", est.GroundingTime, "inference", est.InferenceTime)

	logger.Info("serving", "addr", *addr)
	if err := http.ListenAndServe(*addr, server.New(k, exp)); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}
