// Command probkb-server expands a KB once at startup and serves the
// materialized result over HTTP (see internal/server for the endpoint
// list) — the paper's rationale for marginal (rather than query-time)
// inference: "avoiding query-time computation and improving system
// responsivity".
//
//	probkb-server -kb DIR [-addr :8080] [-engine probkb] [-iters N]
//	              [-no-constraints] [-theta F] [-no-inference]
//	              [-persist DIR] [-slow DUR] [-max-in-flight N]
//	              [-watchdog-interval DUR] [-stuck-query DUR]
//	              [-max-goroutines N] [-max-rhat F] [-max-wal-records N]
//	              [-max-retries-per-tick N] [-incident-dir DIR]
//
// -persist makes the startup expansion durable (created from -kb when
// the directory is empty, recovered and resumed when it already holds a
// store) and enables POST /admin/snapshot to checkpoint it while
// serving.
//
// The server binds its port immediately: /healthz answers 200 and
// /readyz answers 503 while the store recovers and the startup
// expansion runs, then /readyz flips to 200 — so orchestrators can
// distinguish "starting" from "dead" instead of timing out on connect.
//
// -slow enables the slow-query log: requests over the threshold retain
// their EXPLAIN ANALYZE plan at GET /debug/slow and log a warning.
//
// The watchdog runner starts before the initial expansion, so a stuck
// recovery or diverging startup chain already opens incidents while
// /readyz is still 503; they are readable at GET /debug/incidents the
// whole time. On panic or SIGQUIT the flight recorder, incidents, and
// a goroutine dump are written under -incident-dir before the process
// dies.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probkb"
	"probkb/internal/obs"
	"probkb/internal/server"
)

func main() {
	dir := flag.String("kb", "", "KB directory (required)")
	addr := flag.String("addr", ":8080", "listen address")
	iters := flag.Int("iters", 0, "max grounding iterations (0 = to convergence)")
	noConstraints := flag.Bool("no-constraints", false, "disable semantic constraints")
	theta := flag.Float64("theta", 1, "rule cleaning: keep top θ of rules (1 = off)")
	noInference := flag.Bool("no-inference", false, "skip Gibbs marginal inference")
	seed := flag.Int64("seed", 0, "inference seed")
	persistDir := flag.String("persist", "", "durable store directory: created from -kb if empty, recovered if it already holds a store")
	slowThreshold := flag.Duration("slow", 0, "slow-query threshold for /debug/slow (0 = off), e.g. 250ms")
	maxInFlight := flag.Int("max-in-flight", 0, "admission control: max concurrently served data requests, excess answers 429 (0 = unlimited)")
	watchInterval := flag.Duration("watchdog-interval", 5*time.Second, "watchdog detector evaluation interval (0 = watchdogs off)")
	stuckQuery := flag.Duration("stuck-query", 5*time.Minute, "flag a query running longer than this")
	maxGoroutines := flag.Int("max-goroutines", 10000, "flag a goroutine count above this")
	maxRHat := flag.Float64("max-rhat", 2.0, "flag an active Gibbs chain whose checkpoint R-hat exceeds this")
	maxWALRecords := flag.Int64("max-wal-records", 1_000_000, "flag a WAL holding more records than this without a checkpoint (needs -persist)")
	maxRetriesPerTick := flag.Int64("max-retries-per-tick", 50, "flag more MPP segment retries than this per watchdog tick")
	incidentDir := flag.String("incident-dir", "", "directory for crash dumps on panic/SIGQUIT (empty = no dumps)")
	verbose := flag.Bool("v", false, "debug-level logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	if *dir == "" {
		logger.Error("missing -kb DIR")
		os.Exit(1)
	}
	obs.DefaultSlowLog.SetThreshold(*slowThreshold)

	// Crash dumps: SIGQUIT and a main-goroutine panic both write the
	// flight recorder, incidents, metrics, and a goroutine dump to disk
	// before the process dies, so the post-mortem survives.
	if *incidentDir != "" {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			if path, err := obs.DefaultIncidents.WriteCrashDump(*incidentDir, "SIGQUIT"); err == nil {
				logger.Info("crash dump written", "path", path)
			} else {
				logger.Error("crash dump failed", "err", err)
			}
			os.Exit(131)
		}()
		defer func() {
			if r := recover(); r != nil {
				if path, err := obs.DefaultIncidents.WriteCrashDump(*incidentDir, "panic"); err == nil {
					logger.Error("panic; crash dump written", "panic", r, "path", path)
				}
				panic(r)
			}
		}()
	}

	// The watchdog starts before recovery and the initial expansion:
	// anomalies during startup (a stuck recovery, a diverging chain) are
	// incidents too, visible at /debug/incidents while /readyz is 503.
	var watchdog *obs.Runner
	if *watchInterval > 0 {
		watchdog = obs.NewRunner(*watchInterval)
		watchdog.OnFire = func(f obs.Finding) { obs.DefaultIncidents.Open(f) }
		watchdog.Add(&obs.StuckQueryDetector{Registry: obs.Queries, MaxElapsed: *stuckQuery},
			obs.Hysteresis{FireAfter: 2, ClearAfter: 2})
		watchdog.Add(&obs.GoroutineLeakDetector{Max: *maxGoroutines},
			obs.Hysteresis{FireAfter: 2, ClearAfter: 2})
		watchdog.Add(&obs.HeapGrowthDetector{},
			obs.Hysteresis{FireAfter: 1, ClearAfter: 2})
		watchdog.Add(&obs.GibbsDivergenceDetector{Health: obs.Gibbs, MaxRHat: *maxRHat},
			obs.Hysteresis{FireAfter: 2, ClearAfter: 2})
		watchdog.Add(&obs.GibbsStallDetector{Health: obs.Gibbs},
			obs.Hysteresis{FireAfter: 2, ClearAfter: 2})
		watchdog.Add(&obs.RetryStormDetector{Registry: obs.Default, MaxPerTick: *maxRetriesPerTick},
			obs.Hysteresis{FireAfter: 1, ClearAfter: 2})
		watchdog.Start()
		defer watchdog.Stop()
		logger.Info("watchdog running", "interval", *watchInterval)
	}

	// Bind the port before the (possibly long) recovery and expansion:
	// /healthz and /metrics serve immediately, /readyz stays 503 until
	// the expansion below attaches.
	srv := server.NewPending()
	srv.SetMaxInFlight(*maxInFlight)
	go func() {
		logger.Info("listening", "addr", *addr)
		if err := http.ListenAndServe(*addr, srv); err != nil {
			logger.Error("server exited", "err", err)
			os.Exit(1)
		}
	}()

	k, err := probkb.Load(*dir)
	if err != nil {
		logger.Error("load failed", "err", err)
		os.Exit(1)
	}
	var pst *probkb.Store
	if *persistDir != "" {
		ok, err := probkb.StoreExists(*persistDir)
		if err != nil {
			logger.Error("store check failed", "err", err)
			os.Exit(1)
		}
		if ok {
			if pst, err = probkb.OpenStore(*persistDir); err != nil {
				logger.Error("store recovery failed", "err", err)
				os.Exit(1)
			}
			k = pst.KB()
			logger.Info("recovered store", "dir", *persistDir,
				"gen", pst.Gen(), "wal_records", pst.WALRecords(), "facts", pst.Facts())
		} else {
			if pst, err = probkb.CreateStore(*persistDir, k); err != nil {
				logger.Error("store create failed", "err", err)
				os.Exit(1)
			}
			logger.Info("initialized store", "dir", *persistDir)
		}
		defer pst.Close()
	}
	if watchdog != nil && pst != nil {
		watchdog.Add(&obs.WALGrowthDetector{Records: pst.WALRecords, MaxRecords: *maxWALRecords},
			obs.Hysteresis{FireAfter: 2, ClearAfter: 2})
	}
	st := k.Stats()
	logger.Info("loaded KB", "facts", st.Facts, "rules", st.Rules,
		"entities", st.Entities, "constraints", st.Constraints)

	exp, err := k.Expand(probkb.Config{
		Engine:           probkb.SingleNode,
		MaxIterations:    *iters,
		ApplyConstraints: !*noConstraints,
		RuleCleanTheta:   *theta,
		RunInference:     !*noInference,
		GibbsParallel:    true,
		Seed:             *seed,
		Persist:          pst,
		OnIteration: func(it probkb.IterationStats) {
			logger.Debug("grounding iteration", "iter", it.Iteration,
				"new_facts", it.NewFacts, "deleted", it.Deleted, "queries", it.Queries)
		},
	})
	if err != nil {
		logger.Error("expansion failed", "err", err)
		os.Exit(1)
	}
	est := exp.Stats()
	logger.Info("expanded",
		"base_facts", est.BaseFacts, "inferred_facts", est.InferredFacts,
		"factors", est.Factors, "grounding", est.GroundingTime, "inference", est.InferenceTime)

	var opts []server.Option
	if pst != nil {
		opts = append(opts, server.WithStore(pst))
		logger.Info("store durable", "gen", pst.Gen(), "wal_records", pst.WALRecords())
	}
	srv.Attach(k, exp, opts...)
	srv.SetReady(true)
	logger.Info("ready", "addr", *addr)
	select {}
}
